// Randomized full-stack storms: many apps, random couple/decouple/emit/copy
// operations with interleavings forced by network latency. After the dust
// settles, the system-wide invariants of DESIGN.md must hold:
//   - the lock table is empty and every widget is enabled;
//   - each client's replicated coupling info equals the server's closure;
//   - within a coupling group of text fields, all relevant state is equal.
#include <gtest/gtest.h>

#include <set>

#include "cosoft/sim/rng.hpp"
#include "helpers.hpp"

namespace cosoft {
namespace {

using client::CoApp;
using testing::Session;
using toolkit::EventType;
using toolkit::WidgetClass;

constexpr std::uint32_t kApps = 5;
constexpr std::uint32_t kFieldsPerApp = 3;

std::string field_name(std::uint64_t i) { return "f" + std::to_string(i); }

struct Storm {
    Session session{net::PipeConfig{.latency = 500}};
    sim::Rng rng;

    explicit Storm(std::uint64_t seed) : rng(seed) {
        for (std::uint32_t i = 0; i < kApps; ++i) {
            CoApp& app = session.add_app("storm", "u" + std::to_string(i), i + 1);
            for (std::uint32_t f = 0; f < kFieldsPerApp; ++f) {
                (void)app.ui().root().add_child(WidgetClass::kTextField, field_name(f));
            }
        }
    }

    ObjectRef random_object() {
        return ObjectRef{session.app(rng.below(kApps)).instance(), field_name(rng.below(kFieldsPerApp))};
    }

    /// `with_state_ops` additionally mixes in copy/undo, which deliberately
    /// create *partial, temporary* divergence (that is the flexibility the
    /// paper wants) — the convergence check only applies without them.
    void random_op(int step, bool with_state_ops) {
        const std::uint64_t op = rng.below(100);
        const std::size_t actor = rng.below(kApps);
        CoApp& app = session.app(actor);
        const std::string path = field_name(rng.below(kFieldsPerApp));
        if (op < 30) {
            // Late join, the §3.1/§3.2 way: adopt a member's state, then
            // couple ("after two complex UI objects are initially
            // synchronized by copying the UI state...").
            const ObjectRef target = random_object();
            if (!(target == app.ref(path))) {
                app.copy_from(target, path, protocol::MergeMode::kStrict);
                session.run();
                app.couple(path, target);
            }
        } else if (op < 45) {
            app.decouple(path, random_object());
        } else if (op < 85 || !with_state_ops) {
            if (toolkit::Widget* w = app.ui().find(path); w != nullptr && w->enabled()) {
                app.emit(path, w->make_event(EventType::kValueChanged, "v" + std::to_string(step)));
            }
        } else if (op < 95) {
            app.copy_to(path, random_object(), protocol::MergeMode::kStrict);
        } else {
            app.undo(path);
        }
    }

    void check_invariants(int step, bool check_convergence) {
        // 1. All floor-control cycles completed.
        ASSERT_EQ(session.server().locks().locked_count(), 0u) << "step " << step;
        for (std::uint32_t i = 0; i < kApps; ++i) {
            ASSERT_FALSE(session.app(i).has_locked_objects()) << "step " << step << " app " << i;
            for (std::uint32_t f = 0; f < kFieldsPerApp; ++f) {
                ASSERT_TRUE(session.app(i).ui().find(field_name(f))->enabled())
                    << "step " << step << " app " << i << " field " << f;
            }
        }
        // 2. Client replicas agree with the server's closure.
        for (std::uint32_t i = 0; i < kApps; ++i) {
            CoApp& app = session.app(i);
            for (std::uint32_t f = 0; f < kFieldsPerApp; ++f) {
                const ObjectRef self = app.ref(field_name(f));
                const auto server_group = session.server().couples().group_of(self);
                const auto replica = app.coupled_with(field_name(f));
                if (server_group.size() <= 1) {
                    ASSERT_TRUE(replica.empty()) << "step " << step << " " << to_string(self);
                } else {
                    ASSERT_EQ(replica.size(), server_group.size() - 1)
                        << "step " << step << " " << to_string(self);
                    const std::set<ObjectRef> expect{server_group.begin(), server_group.end()};
                    for (const ObjectRef& m : replica) {
                        ASSERT_TRUE(expect.contains(m)) << "step " << step;
                    }
                }
            }
        }
        // 3. Within a group, relevant state (the text value) converged —
        // only guaranteed when every membership change included the initial
        // state copy and no one-shot state op (copy/undo) intervened.
        if (!check_convergence) return;
        std::set<ObjectRef> checked;
        for (std::uint32_t i = 0; i < kApps; ++i) {
            for (std::uint32_t f = 0; f < kFieldsPerApp; ++f) {
                const ObjectRef self{session.app(i).instance(), field_name(f)};
                if (checked.contains(self)) continue;
                const auto group = session.server().couples().group_of(self);
                if (group.size() <= 1) continue;
                std::set<std::string> values;
                for (const ObjectRef& m : group) {
                    checked.insert(m);
                    // instance ids are 1-based and assigned in add order
                    CoApp& owner = session.app(m.instance - 1);
                    values.insert(owner.ui().find(m.path)->text("value"));
                }
                ASSERT_EQ(values.size(), 1u) << "step " << step << " group of " << to_string(self)
                                             << " diverged";
            }
        }
    }
};

class StackStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackStorm, LockAndReplicaInvariantsUnderFullRandomOps) {
    Storm storm{GetParam()};
    for (int step = 0; step < 250; ++step) {
        // A small burst of concurrent operations, then settle.
        const std::uint64_t burst = 1 + storm.rng.below(3);
        for (std::uint64_t b = 0; b < burst; ++b) storm.random_op(step, /*with_state_ops=*/true);
        storm.session.run();
        storm.check_invariants(step, /*check_convergence=*/false);
    }
}

TEST_P(StackStorm, AnEventConvergesItsWholeGroup) {
    // The actual §3.2 guarantee: whatever divergence state ops or group
    // merges produced, one re-executed event makes the touched group's
    // relevant state identical at every member.
    Storm storm{GetParam() * 31 + 1};
    for (int step = 0; step < 150; ++step) {
        storm.random_op(step, /*with_state_ops=*/true);
        storm.session.run();

        CoApp& probe_app = storm.session.app(storm.rng.below(kApps));
        const std::string path = field_name(storm.rng.below(kFieldsPerApp));
        toolkit::Widget* w = probe_app.ui().find(path);
        if (w == nullptr || !w->enabled() || !probe_app.is_coupled(path)) continue;
        probe_app.emit(path, w->make_event(EventType::kValueChanged, "probe" + std::to_string(step)));
        storm.session.run();

        const auto group = storm.session.server().couples().group_of(probe_app.ref(path));
        std::set<std::string> values;
        for (const ObjectRef& m : group) {
            values.insert(storm.session.app(m.instance - 1).ui().find(m.path)->text("value"));
        }
        ASSERT_EQ(values.size(), 1u) << "step " << step << " group of " << to_string(probe_app.ref(path));
        ASSERT_EQ(*values.begin(), "probe" + std::to_string(step)) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackStorm, ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(StackStorm, ChurningMembershipKeepsLocksAndReplicasClean) {
    // One hot object per app, constant re-grouping plus edits by a group
    // member; after each member edit, that group has converged.
    Storm storm{4242};
    for (int round = 0; round < 60; ++round) {
        // re-group: copy-then-couple (late join)
        CoApp& joiner = storm.session.app(round % kApps);
        const ObjectRef target{storm.session.app((round + 1) % kApps).instance(), field_name(0)};
        joiner.copy_from(target, field_name(0), protocol::MergeMode::kStrict);
        storm.session.run();
        joiner.couple(field_name(0), target);
        storm.session.run();

        // edit by a group member re-converges the (possibly merged) group
        if (toolkit::Widget* w = joiner.ui().find(field_name(0)); w->enabled()) {
            joiner.emit(field_name(0), w->make_event(EventType::kValueChanged, "r" + std::to_string(round)));
        }
        storm.session.run();

        const auto group = storm.session.server().couples().group_of(joiner.ref(field_name(0)));
        std::set<std::string> values;
        for (const ObjectRef& m : group) {
            values.insert(storm.session.app(m.instance - 1).ui().find(m.path)->text("value"));
        }
        EXPECT_EQ(values.size(), 1u) << "round " << round;

        // shrink
        if (round % 3 == 0) {
            joiner.decouple(field_name(0), target);
            storm.session.run();
        }
        storm.check_invariants(round, /*check_convergence=*/false);
    }
}

}  // namespace
}  // namespace cosoft
