// Unit tests for the widget tree: structure, attributes, events, feedback.
#include <gtest/gtest.h>

#include "cosoft/toolkit/widget.hpp"

namespace cosoft::toolkit {
namespace {

TEST(WidgetTree, BuildsHierarchyWithPathnames) {
    WidgetTree tree;
    Widget* form = tree.root().add_child(WidgetClass::kForm, "main").value();
    Widget* query = form->add_child(WidgetClass::kForm, "queryForm").value();
    Widget* author = query->add_child(WidgetClass::kTextField, "author").value();

    EXPECT_EQ(author->path(), "main/queryForm/author");
    EXPECT_EQ(tree.find("main/queryForm/author"), author);
    EXPECT_EQ(tree.find("main"), form);
    EXPECT_EQ(tree.find("missing"), nullptr);
    EXPECT_EQ(tree.find("main/queryForm/nope"), nullptr);
    EXPECT_EQ(tree.size(), 3u);
}

TEST(WidgetTree, RejectsDuplicateAndInvalidNames) {
    WidgetTree tree;
    ASSERT_TRUE(tree.root().add_child(WidgetClass::kButton, "b").is_ok());
    EXPECT_FALSE(tree.root().add_child(WidgetClass::kButton, "b").is_ok());
    EXPECT_FALSE(tree.root().add_child(WidgetClass::kButton, "").is_ok());
    EXPECT_FALSE(tree.root().add_child(WidgetClass::kButton, "a/b").is_ok());
}

TEST(WidgetTree, RemoveChildFiresDestroyObserversDeepestFirst) {
    WidgetTree tree;
    Widget* a = tree.root().add_child(WidgetClass::kForm, "a").value();
    Widget* b = a->add_child(WidgetClass::kForm, "b").value();
    (void)b->add_child(WidgetClass::kButton, "c").value();

    std::vector<std::string> destroyed;
    tree.set_destroy_observer([&](const std::string& path) { destroyed.push_back(path); });
    ASSERT_TRUE(tree.root().remove_child("a").is_ok());
    EXPECT_EQ(destroyed, (std::vector<std::string>{"a/b/c", "a/b", "a"}));
    EXPECT_EQ(tree.size(), 0u);
}

TEST(WidgetTree, RemoveMissingChildFails) {
    WidgetTree tree;
    EXPECT_EQ(tree.root().remove_child("ghost").code(), ErrorCode::kUnknownObject);
}

TEST(WidgetAttributes, DefaultsComeFromSchema) {
    WidgetTree tree;
    Widget* field = tree.root().add_child(WidgetClass::kTextField, "f").value();
    EXPECT_EQ(field->text("value"), "");
    EXPECT_EQ(field->integer("maxlen"), 256);
    EXPECT_TRUE(field->flag("enabled"));
    EXPECT_TRUE(field->flag("visible"));
}

TEST(WidgetAttributes, SetAndTypedGetters) {
    WidgetTree tree;
    Widget* slider = tree.root().add_child(WidgetClass::kSlider, "s").value();
    ASSERT_TRUE(slider->set_attribute("value", 42.5).is_ok());
    EXPECT_DOUBLE_EQ(slider->real("value"), 42.5);

    Widget* menu = tree.root().add_child(WidgetClass::kMenu, "m").value();
    ASSERT_TRUE(menu->set_attribute("items", std::vector<std::string>{"a", "b"}).is_ok());
    EXPECT_EQ(menu->text_list("items").size(), 2u);
}

TEST(WidgetAttributes, UnknownAttributeRejected) {
    WidgetTree tree;
    Widget* b = tree.root().add_child(WidgetClass::kButton, "b").value();
    EXPECT_EQ(b->set_attribute("nonsense", std::int64_t{1}).code(), ErrorCode::kInvalidArgument);
}

TEST(WidgetAttributes, TypeMismatchConvertsWhenPossible) {
    WidgetTree tree;
    Widget* slider = tree.root().add_child(WidgetClass::kSlider, "s").value();
    // int -> real conversion is sensible and accepted.
    ASSERT_TRUE(slider->set_attribute("value", std::int64_t{7}).is_ok());
    EXPECT_DOUBLE_EQ(slider->real("value"), 7.0);
    // text "3.5" -> real parses.
    ASSERT_TRUE(slider->set_attribute("value", std::string{"3.5"}).is_ok());
    EXPECT_DOUBLE_EQ(slider->real("value"), 3.5);
    // unparseable text -> error.
    EXPECT_FALSE(slider->set_attribute("value", std::string{"abc"}).is_ok());
}

TEST(WidgetAttributes, ObserverFiresOnEverySet) {
    WidgetTree tree;
    Widget* f = tree.root().add_child(WidgetClass::kTextField, "f").value();
    int notifications = 0;
    tree.set_attribute_observer([&](Widget&, std::string_view) { ++notifications; });
    (void)f->set_attribute("value", std::string{"x"});
    (void)f->set_attribute("value", std::string{"y"});
    EXPECT_EQ(notifications, 2);
}

TEST(WidgetCallbacks, FireOnEmitInRegistrationOrder) {
    WidgetTree tree;
    Widget* b = tree.root().add_child(WidgetClass::kButton, "b").value();
    std::vector<int> order;
    b->add_callback(EventType::kActivated, [&](Widget&, const Event&) { order.push_back(1); });
    b->add_callback(EventType::kActivated, [&](Widget&, const Event&) { order.push_back(2); });
    b->emit(b->make_event(EventType::kActivated));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(b->callback_count(EventType::kActivated), 2u);
}

TEST(WidgetCallbacks, DisabledWidgetIgnoresEmit) {
    WidgetTree tree;
    Widget* f = tree.root().add_child(WidgetClass::kTextField, "f").value();
    f->set_enabled(false);
    f->emit(f->make_event(EventType::kValueChanged, std::string{"nope"}));
    EXPECT_EQ(f->text("value"), "");
}

struct FeedbackCase {
    WidgetClass cls;
    EventType type;
    AttributeValue payload;
    std::string attribute;      // attribute expected to change
    AttributeValue expected;    // value after feedback
};

class FeedbackTest : public ::testing::TestWithParam<FeedbackCase> {};

TEST_P(FeedbackTest, AppliesAndUndoes) {
    const FeedbackCase& c = GetParam();
    WidgetTree tree;
    Widget* w = tree.root().add_child(c.cls, "w").value();
    const AttributeValue before = w->attribute(c.attribute);

    const Event e = w->make_event(c.type, c.payload);
    const FeedbackUndo undo = w->apply_feedback(e);
    EXPECT_EQ(w->attribute(c.attribute), c.expected) << to_string(c.type);

    w->undo_feedback(undo);
    EXPECT_EQ(w->attribute(c.attribute), before) << "undo of " << to_string(c.type);
}

INSTANTIATE_TEST_SUITE_P(
    AllEventKinds, FeedbackTest,
    ::testing::Values(
        FeedbackCase{WidgetClass::kTextField, EventType::kValueChanged, std::string{"hi"}, "value",
                     std::string{"hi"}},
        FeedbackCase{WidgetClass::kSlider, EventType::kValueChanged, 5.0, "value", 5.0},
        FeedbackCase{WidgetClass::kToggle, EventType::kValueChanged, true, "value", true},
        FeedbackCase{WidgetClass::kLabel, EventType::kValueChanged, std::string{"txt"}, "label",
                     std::string{"txt"}},
        FeedbackCase{WidgetClass::kImage, EventType::kValueChanged, std::string{"pic.png"}, "source",
                     std::string{"pic.png"}},
        FeedbackCase{WidgetClass::kMenu, EventType::kSelectionChanged, std::string{"b"}, "selection",
                     std::string{"b"}},
        FeedbackCase{WidgetClass::kList, EventType::kItemAdded, std::string{"item"}, "items",
                     std::vector<std::string>{"item"}},
        FeedbackCase{WidgetClass::kCanvas, EventType::kStroke, std::string{"line(0,0,1,1)"}, "strokes",
                     std::vector<std::string>{"line(0,0,1,1)"}},
        FeedbackCase{WidgetClass::kTable, EventType::kItemAdded, std::string{"row1"}, "rows",
                     std::vector<std::string>{"row1"}},
        FeedbackCase{WidgetClass::kTextField, EventType::kKeystroke, std::string{"a"}, "value",
                     std::string{"a"}}));

TEST(Feedback, ItemRemovedDeletesFirstMatch) {
    WidgetTree tree;
    Widget* list = tree.root().add_child(WidgetClass::kList, "l").value();
    ASSERT_TRUE(list->set_attribute("items", std::vector<std::string>{"a", "b", "a"}).is_ok());
    const auto undo = list->apply_feedback(list->make_event(EventType::kItemRemoved, std::string{"a"}));
    EXPECT_EQ(list->text_list("items"), (std::vector<std::string>{"b", "a"}));
    list->undo_feedback(undo);
    EXPECT_EQ(list->text_list("items"), (std::vector<std::string>{"a", "b", "a"}));
}

TEST(Feedback, ClearedResetsCollectionAndSelection) {
    WidgetTree tree;
    Widget* list = tree.root().add_child(WidgetClass::kList, "l").value();
    ASSERT_TRUE(list->set_attribute("items", std::vector<std::string>{"a", "b"}).is_ok());
    ASSERT_TRUE(list->set_attribute("selection", std::string{"a"}).is_ok());
    const auto undo = list->apply_feedback(list->make_event(EventType::kCleared));
    EXPECT_TRUE(list->text_list("items").empty());
    EXPECT_EQ(list->text("selection"), "");
    list->undo_feedback(undo);
    EXPECT_EQ(list->text_list("items").size(), 2u);
    EXPECT_EQ(list->text("selection"), "a");
}

TEST(Feedback, KeystrokesAppend) {
    WidgetTree tree;
    Widget* f = tree.root().add_child(WidgetClass::kTextField, "f").value();
    for (const char* k : {"h", "e", "y"}) {
        (void)f->apply_feedback(f->make_event(EventType::kKeystroke, std::string{k}));
    }
    EXPECT_EQ(f->text("value"), "hey");
}

TEST(Feedback, ActivatedHasNoStateEffect) {
    WidgetTree tree;
    Widget* b = tree.root().add_child(WidgetClass::kButton, "b").value();
    const auto undo = b->apply_feedback(b->make_event(EventType::kActivated));
    EXPECT_TRUE(undo.empty());
}

TEST(WidgetTypes, EveryClassHasSchemaAndName) {
    for (std::size_t i = 0; i < kWidgetClassCount; ++i) {
        const auto cls = static_cast<WidgetClass>(i);
        const WidgetTypeInfo& info = type_info(cls);
        EXPECT_EQ(info.cls, cls);
        EXPECT_GE(info.attributes.size(), 8u);  // at least the common set
        EXPECT_NE(to_string(cls), "?");
        EXPECT_EQ(widget_class_from_string(to_string(cls)), cls);
    }
    EXPECT_EQ(widget_class_from_string("flux-capacitor"), std::nullopt);
}

TEST(WidgetTypes, RelevantAttributesMatchThePaperExamples) {
    // "two text input fields may have different size and fonts, but just
    // share the same content"
    const auto relevant = type_info(WidgetClass::kTextField).relevant_attributes();
    EXPECT_EQ(relevant, std::vector<std::string>{"value"});
    EXPECT_FALSE(type_info(WidgetClass::kTextField).find_attribute("font")->relevant);
    EXPECT_FALSE(type_info(WidgetClass::kTextField).find_attribute("width")->relevant);
}

TEST(Events, CodecRoundTrip) {
    Event e;
    e.type = EventType::kSelectionChanged;
    e.path = "tori/query/authorOp";
    e.payload = std::string{"substring"};
    e.detail = "mouse";
    ByteWriter w;
    encode(w, e);
    ByteReader r{w.data()};
    EXPECT_EQ(decode_event(r), e);
    EXPECT_TRUE(r.exhausted());
}

TEST(WidgetTree, ReorderChildrenMatchesRequestedOrder) {
    WidgetTree tree;
    Widget* f = tree.root().add_child(WidgetClass::kForm, "f").value();
    for (const char* n : {"a", "b", "c", "d"}) (void)f->add_child(WidgetClass::kButton, n);
    f->reorder_children({"c", "a"});
    std::vector<std::string> names;
    for (const Widget* c : f->children()) names.push_back(c->name());
    // Listed names first in the given order; the rest keep relative order.
    EXPECT_EQ(names, (std::vector<std::string>{"c", "a", "b", "d"}));
}

TEST(WidgetTree, EventObserverSeesAllFiredEvents) {
    WidgetTree tree;
    Widget* f = tree.root().add_child(WidgetClass::kTextField, "f").value();
    std::vector<EventType> seen;
    tree.set_event_observer([&](Widget&, const Event& e) { seen.push_back(e.type); });
    f->emit(f->make_event(EventType::kValueChanged, std::string{"x"}));
    f->fire_callbacks(f->make_event(EventType::kKeystroke, std::string{"k"}));
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], EventType::kValueChanged);
    EXPECT_EQ(seen[1], EventType::kKeystroke);
}

TEST(Visit, CoversWholeSubtree) {
    WidgetTree tree;
    Widget* a = tree.root().add_child(WidgetClass::kForm, "a").value();
    (void)a->add_child(WidgetClass::kButton, "b");
    (void)a->add_child(WidgetClass::kButton, "c");
    int count = 0;
    std::as_const(*a).visit([&](const Widget&) { ++count; });
    EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace cosoft::toolkit
