// cosoft-mc: exhaustive interleaving exploration of the §3.2 multiple-
// execution algorithm, reduction effectiveness, seeded fault violations,
// trace minimization, and deterministic replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cosoft/mc/explorer.hpp"
#include "cosoft/mc/scenario.hpp"
#include "cosoft/mc/trace.hpp"
#include "cosoft/mc/world.hpp"

namespace cosoft::mc {
namespace {

const Scenario& scenario(const char* name) {
    const Scenario* s = find_scenario(name);
    EXPECT_NE(s, nullptr) << name;
    return *s;
}

TEST(McWorld, ConstructionIsDeterministic) {
    const Options options;
    World a(scenario("couple_lock_execute"), options);
    World b(scenario("couple_lock_execute"), options);
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_FALSE(a.quiescent()) << "injected stimuli must be in flight";
    EXPECT_TRUE(a.step_violations().empty());
}

TEST(McWorld, SameScheduleSameDigest) {
    const Options options;
    World a(scenario("couple_lock_execute"), options);
    World b(scenario("couple_lock_execute"), options);
    // Drive both with the identical greedy schedule.
    while (!a.quiescent()) {
        const std::vector<Choice> choices = a.choices();
        ASSERT_FALSE(choices.empty());
        a.apply(choices.front());
        b.apply(choices.front());
        ASSERT_EQ(a.digest(), b.digest());
    }
    EXPECT_TRUE(b.quiescent());
    EXPECT_TRUE(a.quiescence_violations().empty()) << a.quiescence_violations().front();
}

TEST(McWorld, DigestDistinguishesDifferentOrders) {
    const Options options;
    World a(scenario("couple_lock_execute"), options);
    const std::vector<Choice> choices = a.choices();
    ASSERT_GE(choices.size(), 2u);
    World b(scenario("couple_lock_execute"), options);
    a.apply(choices[0]);
    b.apply(choices[1]);
    EXPECT_NE(a.digest(), b.digest());
}

// The acceptance bar: the 2-client couple/lock/execute scenario explores
// exhaustively — at least 1,000 distinct interleavings survive reduction —
// and every safety property (invariants, conformance, drain, convergence,
// accounting) holds on every path.
TEST(McExplore, CoupleLockExecuteExhaustiveAllGreen) {
    Options options;  // no faults, full reduction
    Explorer explorer(scenario("couple_lock_execute"), options);
    const ExploreResult result = explorer.explore();
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.depth_cap_hits, 0u);
    ASSERT_TRUE(result.violations.empty()) << result.violations.front().detail;
    EXPECT_GE(result.interleavings, 1000u);
}

TEST(McExplore, ReductionsActuallyPrune) {
    Options options;
    Explorer explorer(scenario("couple_lock_execute"), options);
    const ExploreResult reduced = explorer.explore();
    ASSERT_TRUE(reduced.complete);
    EXPECT_GT(reduced.states_pruned, 0u) << "digest pruning never fired";
    EXPECT_GT(reduced.sleep_skips, 0u) << "sleep sets never fired";

    // Without reductions the same space must be at least as large; bound the
    // run so the test stays fast even though the full tree is much bigger.
    Options raw = options;
    raw.use_por = false;
    raw.use_state_pruning = false;
    raw.max_interleavings = reduced.interleavings;
    Explorer unreduced(scenario("couple_lock_execute"), raw);
    const ExploreResult full = unreduced.explore();
    EXPECT_TRUE(full.violations.empty());
    EXPECT_GE(full.interleavings, reduced.interleavings);
}

TEST(McExplore, LooseSyncBoundedAllGreen) {
    Options options;
    options.max_interleavings = 4000;
    Explorer explorer(scenario("loose_sync"), options);
    const ExploreResult result = explorer.explore();
    EXPECT_TRUE(result.violations.empty()) << result.violations.front().detail;
    EXPECT_GT(result.interleavings, 0u);
}

TEST(McExplore, TrioRaceBoundedAllGreen) {
    Options options;
    options.max_interleavings = 4000;
    Explorer explorer(scenario("trio_race"), options);
    const ExploreResult result = explorer.explore();
    EXPECT_TRUE(result.violations.empty()) << result.violations.front().detail;
    EXPECT_GT(result.interleavings, 0u);
}

TEST(McExplore, CrashFaultPathsKeepServerConsistent) {
    Options options;
    options.close_faults = 1;
    options.max_interleavings = 4000;
    Explorer explorer(scenario("couple_lock_execute"), options);
    const ExploreResult result = explorer.explore();
    EXPECT_TRUE(result.violations.empty()) << result.violations.front().detail;
}

// The seeded violation: one frame-loss fault lets the model checker find a
// schedule where a dropped frame strands the lock table / a pending action —
// the drain property trips at quiescence, the schedule minimizes, and the
// minimized trace replays deterministically.
TEST(McFaults, DroppedFrameYieldsMinimizedReplayableTrace) {
    Options options;
    options.drop_faults = 1;
    Explorer explorer(scenario("couple_lock_execute"), options);
    const ExploreResult result = explorer.explore();
    ASSERT_FALSE(result.violations.empty()) << "loss fault should strand state";
    const Violation& v = result.violations.front();
    EXPECT_EQ(v.property, "drain") << v.detail;

    // Replay of the raw schedule reproduces the same property...
    const auto raw = explorer.replay(v.schedule);
    ASSERT_TRUE(raw.has_value());
    EXPECT_EQ(raw->property, v.property);

    // ...minimization shrinks it (or at least never grows it)...
    const std::vector<Choice> minimized = explorer.minimize(v);
    EXPECT_LE(minimized.size(), v.schedule.size());
    const auto replayed = explorer.replay(minimized);
    ASSERT_TRUE(replayed.has_value()) << "minimized schedule lost the violation";
    EXPECT_EQ(replayed->property, v.property);

    // ...and replay is deterministic: same violation, twice.
    const auto again = explorer.replay(minimized);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->detail, replayed->detail);
}

TEST(McFaults, TraceFileRoundTripsAndReplays) {
    Options options;
    options.drop_faults = 1;
    Explorer explorer(scenario("couple_lock_execute"), options);
    const ExploreResult result = explorer.explore();
    ASSERT_FALSE(result.violations.empty());
    const Violation& v = result.violations.front();
    const std::vector<Choice> minimized = explorer.minimize(v);

    Trace trace;
    trace.scenario = "couple_lock_execute";
    trace.drop_faults = options.drop_faults;
    trace.close_faults = options.close_faults;
    trace.property = v.property;
    trace.steps = minimized;

    const std::vector<std::string> labels = explorer.endpoint_labels();
    const std::string text = format_trace(trace, labels);

    // The file survives a write/read cycle byte-for-byte.
    const std::string path = testing::TempDir() + "cosoft_mc_trace.txt";
    {
        std::ofstream out(path);
        ASSERT_TRUE(out.good());
        out << text;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());

    const auto parsed = parse_trace(buf.str(), labels);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    EXPECT_EQ(parsed.value().scenario, trace.scenario);
    EXPECT_EQ(parsed.value().drop_faults, trace.drop_faults);
    EXPECT_EQ(parsed.value().property, trace.property);
    ASSERT_TRUE(parsed.value().steps == trace.steps);

    // A fresh explorer (fresh worlds) reproduces the violation from the file.
    Explorer fresh(scenario("couple_lock_execute"), options);
    const auto replayed = fresh.replay(parsed.value().steps);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(replayed->property, trace.property);
}

TEST(McTrace, FormatParseRoundTrip) {
    Trace trace;
    trace.scenario = "couple_lock_execute";
    trace.drop_faults = 2;
    trace.close_faults = 1;
    trace.property = "drain";
    trace.steps = {{ChoiceKind::kDeliver, 0}, {ChoiceKind::kDrop, 3}, {ChoiceKind::kCrash, 1},
                   {ChoiceKind::kDeliver, 2}};
    const std::vector<std::string> labels{"c0->srv", "srv->c0", "c1->srv", "srv->c1"};
    const auto parsed = parse_trace(format_trace(trace, labels), labels);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    EXPECT_EQ(parsed.value().scenario, trace.scenario);
    EXPECT_EQ(parsed.value().drop_faults, trace.drop_faults);
    EXPECT_EQ(parsed.value().close_faults, trace.close_faults);
    EXPECT_EQ(parsed.value().property, trace.property);
    EXPECT_TRUE(parsed.value().steps == trace.steps);
}

TEST(McTrace, ParseRejectsUnknownDirectives) {
    const std::vector<std::string> labels{"c0->srv"};
    EXPECT_FALSE(parse_trace("bogus line\n", labels).is_ok());
    EXPECT_FALSE(parse_trace("scenario x\nstep deliver nowhere\n", labels).is_ok());
    EXPECT_FALSE(parse_trace("step deliver c0->srv\n", labels).is_ok());  // no scenario
}

}  // namespace
}  // namespace cosoft::mc
