// Tests for loose coupling — the time-dimension relaxation (§1/§2.2):
// "collaboration can be based on periodical updates". A loose object stops
// receiving re-executions immediately; the server queues them; sync_now (or
// switching back to tight) delivers the backlog in order. Loose objects do
// not participate in floor control.
#include <gtest/gtest.h>

#include <algorithm>

#include "cosoft/sim/rng.hpp"
#include "helpers.hpp"

namespace cosoft {
namespace {

using client::CoApp;
using testing::Session;
using toolkit::EventType;
using toolkit::WidgetClass;

struct Trio {
    Session session;
    CoApp* a;
    CoApp* b;
    CoApp* c;

    Trio() {
        a = &session.add_app("A", "alice", 1);
        b = &session.add_app("B", "bob", 2);
        c = &session.add_app("C", "carol", 3);
        for (CoApp* app : {a, b, c}) (void)app->ui().root().add_child(WidgetClass::kCanvas, "pad");
        a->couple("pad", b->ref("pad"));
        session.run();
        b->couple("pad", c->ref("pad"));
        session.run();
    }

    void draw(CoApp& app, const std::string& stroke) {
        app.emit("pad", app.ui().find("pad")->make_event(EventType::kStroke, stroke));
        session.run();
    }

    std::size_t strokes(CoApp& app) { return app.ui().find("pad")->text_list("strokes").size(); }
};

TEST(LooseCoupling, LooseMemberStopsReceivingImmediately) {
    Trio t;
    Status st{ErrorCode::kInvalidArgument, "pending"};
    t.c->set_loose("pad", true, [&](const Status& r) { st = r; });
    t.session.run();
    ASSERT_TRUE(st.is_ok()) << st.message();
    EXPECT_TRUE(t.c->is_loose("pad"));

    t.draw(*t.a, "s1");
    t.draw(*t.a, "s2");
    EXPECT_EQ(t.strokes(*t.b), 2u);  // tight member synchronized
    EXPECT_EQ(t.strokes(*t.c), 0u);  // loose member deferred
    EXPECT_EQ(t.session.server().deferred_count(t.c->ref("pad")), 2u);
}

TEST(LooseCoupling, SyncNowDeliversBacklogInOrder) {
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();
    for (int i = 0; i < 5; ++i) t.draw(*t.a, "s" + std::to_string(i));
    ASSERT_EQ(t.strokes(*t.c), 0u);

    Status st{ErrorCode::kInvalidArgument, "pending"};
    t.c->sync_now("pad", [&](const Status& r) { st = r; });
    t.session.run();
    ASSERT_TRUE(st.is_ok());
    const auto strokes = t.c->ui().find("pad")->text_list("strokes");
    ASSERT_EQ(strokes.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(strokes[static_cast<std::size_t>(i)], "s" + std::to_string(i));
    EXPECT_EQ(t.session.server().deferred_count(t.c->ref("pad")), 0u);
}

TEST(LooseCoupling, ReturningToTightFlushesAndResumes) {
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();
    t.draw(*t.a, "while-loose");

    t.c->set_loose("pad", false);
    t.session.run();
    EXPECT_EQ(t.strokes(*t.c), 1u);  // backlog flushed on mode switch
    EXPECT_FALSE(t.c->is_loose("pad"));

    t.draw(*t.a, "tight-again");
    EXPECT_EQ(t.strokes(*t.c), 2u);  // immediate again
}

TEST(LooseCoupling, LooseMemberIsNotLockedNorDisabled) {
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();

    // Use a latency session view: simpler — check invariants post-hoc: while
    // an action runs, c never gets disabled; afterwards nothing is locked.
    t.draw(*t.a, "x");
    EXPECT_FALSE(t.c->has_locked_objects());
    EXPECT_TRUE(t.c->ui().find("pad")->enabled());
    EXPECT_EQ(t.session.server().locks().locked_count(), 0u);
}

TEST(LooseCoupling, LooseMembersOwnActionsStillBroadcast) {
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();

    t.draw(*t.c, "from-loose-member");
    EXPECT_EQ(t.strokes(*t.a), 1u);
    EXPECT_EQ(t.strokes(*t.b), 1u);
    // Its own action is applied locally too, of course.
    EXPECT_EQ(t.strokes(*t.c), 1u);
}

TEST(LooseCoupling, TwoLooseMembersQueueIndependently) {
    Trio t;
    t.b->set_loose("pad", true);
    t.c->set_loose("pad", true);
    t.session.run();

    t.draw(*t.a, "s1");
    t.draw(*t.a, "s2");
    EXPECT_EQ(t.session.server().deferred_count(t.b->ref("pad")), 2u);
    EXPECT_EQ(t.session.server().deferred_count(t.c->ref("pad")), 2u);

    t.b->sync_now("pad");
    t.session.run();
    EXPECT_EQ(t.strokes(*t.b), 2u);
    EXPECT_EQ(t.strokes(*t.c), 0u);  // c's queue untouched
}

TEST(LooseCoupling, OnlyOwnerMayChangeModeOrSync) {
    Trio t;
    Status st = Status::ok();
    // CoApp always uses ref(local); craft the abuse through a raw check:
    // b tries to sync c's object by sending the ref directly.
    // (The public API does not allow it, so go through the wire.)
    auto [raw_client, raw_server] = t.session.net().make_pipe();
    t.session.server().attach(raw_server);
    raw_client->on_receive([&](std::span<const std::uint8_t> frame) {
        auto decoded = protocol::decode_message(frame);
        if (decoded.is_ok()) {
            if (const auto* ack = std::get_if<protocol::Ack>(&decoded.value())) {
                st = Status{ack->code, ack->message};
            }
        }
    });
    (void)raw_client->send(protocol::encode_message(protocol::Register{9, "rogue", "h", "raw"}));
    t.session.run();
    (void)raw_client->send(
        protocol::encode_message(protocol::SetCouplingMode{1, t.c->ref("pad"), true}));
    t.session.run();
    EXPECT_EQ(st.code(), ErrorCode::kPermissionDenied);
    EXPECT_FALSE(t.session.server().is_loose(t.c->ref("pad")));
}

class LooseConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LooseConvergence, FinalSyncConvergesContent) {
    // Property: however tight/loose modes toggle and whenever syncs happen
    // during an append-only stroke stream, a final sync of every loose
    // member delivers every action everywhere — the stroke *sets* converge.
    // Exact sequence order is NOT guaranteed when loose members act while
    // holding a backlog: their local actions interleave with the deferred
    // ones differently per site (the floor control only serializes the
    // tight subset; the paper's timestamp-based alternative, §2.1, is what
    // a total order would require).
    sim::Rng rng{GetParam()};
    Trio t;
    int stroke_id = 0;
    for (int step = 0; step < 120; ++step) {
        const std::uint64_t op = rng.below(100);
        CoApp* actor = (op % 3 == 0) ? t.a : (op % 3 == 1) ? t.b : t.c;
        if (op < 60) {
            if (actor->ui().find("pad")->enabled()) {
                t.draw(*actor, "s" + std::to_string(stroke_id++));
            }
        } else if (op < 75) {
            actor->set_loose("pad", true);
            t.session.run();
        } else if (op < 90) {
            actor->set_loose("pad", false);  // flushes
            t.session.run();
        } else {
            actor->sync_now("pad");
            t.session.run();
        }
    }
    // Final settlement: everyone returns to tight (flushing their queues).
    for (CoApp* app : {t.a, t.b, t.c}) {
        app->set_loose("pad", false);
        t.session.run();
    }
    auto reference = t.a->ui().find("pad")->text_list("strokes");
    std::sort(reference.begin(), reference.end());
    EXPECT_EQ(reference.size(), static_cast<std::size_t>(stroke_id));
    for (CoApp* app : {t.b, t.c}) {
        auto strokes = app->ui().find("pad")->text_list("strokes");
        std::sort(strokes.begin(), strokes.end());
        EXPECT_EQ(strokes, reference) << app->app_name();
    }
    EXPECT_EQ(t.session.server().locks().locked_count(), 0u);
}

TEST_P(LooseConvergence, ReceiveOnlyLooseMembersConvergeExactly) {
    // When loose members only *receive* (the monitoring/periodic-update use
    // case the paper describes), the delivered order equals the tight
    // order, so sequences — not just sets — converge.
    sim::Rng rng{GetParam() * 17 + 1};
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();
    int stroke_id = 0;
    for (int step = 0; step < 80; ++step) {
        CoApp* actor = rng.chance(0.5) ? t.a : t.b;  // only tight members act
        t.draw(*actor, "s" + std::to_string(stroke_id++));
        if (rng.chance(0.2)) {
            t.c->sync_now("pad");
            t.session.run();
        }
    }
    t.c->sync_now("pad");
    t.session.run();
    const auto reference = t.a->ui().find("pad")->text_list("strokes");
    EXPECT_EQ(t.b->ui().find("pad")->text_list("strokes"), reference);
    EXPECT_EQ(t.c->ui().find("pad")->text_list("strokes"), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LooseConvergence, ::testing::Values(3, 9, 27, 81));

TEST(LooseCoupling, DisconnectDropsQueueAndMode) {
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();
    t.draw(*t.a, "s1");
    ASSERT_EQ(t.session.server().deferred_count(t.c->ref("pad")), 1u);

    t.session.disconnect(2);  // carol terminates
    EXPECT_EQ(t.session.server().deferred_count(ObjectRef{3, "pad"}), 0u);
    EXPECT_FALSE(t.session.server().is_loose(ObjectRef{3, "pad"}));
}

TEST(LooseCoupling, WidgetDestructionDropsQueueAndMode) {
    Trio t;
    t.c->set_loose("pad", true);
    t.session.run();
    t.draw(*t.a, "s1");
    const ObjectRef ref = t.c->ref("pad");
    ASSERT_EQ(t.session.server().deferred_count(ref), 1u);

    ASSERT_TRUE(t.c->ui().root().remove_child("pad").is_ok());
    t.session.run();
    EXPECT_EQ(t.session.server().deferred_count(ref), 0u);
    EXPECT_FALSE(t.session.server().is_loose(ref));
}

}  // namespace
}  // namespace cosoft
