// Wire-protocol conformance checker: rule-table sanity, the per-connection
// state machine (registration, request/response pairing, the §3.2 lock
// lifecycle, ack balancing), and zero-violation interposition on a live
// LocalSession.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cosoft/apps/local_session.hpp"
#include "cosoft/protocol/conformance.hpp"
#include "cosoft/protocol/messages.hpp"
#include "cosoft/toolkit/widget.hpp"

namespace cosoft {
namespace {

using protocol::ConformanceChecker;
using protocol::Direction;
using protocol::Message;

constexpr Direction kC2S = Direction::kClientToServer;
constexpr Direction kS2C = Direction::kServerToClient;

/// A checker that has already seen a clean Register/RegisterAck exchange.
ConformanceChecker registered_checker() {
    ConformanceChecker c{"test"};
    c.observe(kC2S, protocol::Register{1, "alice", "host", "app", protocol::kProtocolVersion});
    c.observe(kS2C, protocol::RegisterAck{7});
    EXPECT_TRUE(c.violations().empty());
    return c;
}

TEST(ConformanceRules, TableCoversEveryMessageType) {
    const auto& rules = protocol::message_rules();
    ASSERT_EQ(rules.size(), std::variant_size_v<Message>);
    for (const auto& rule : rules) {
        EXPECT_FALSE(rule.name.empty());
        EXPECT_TRUE(rule.client_to_server || rule.server_to_client) << rule.name;
    }
}

TEST(ConformanceRules, DirectionAssignments) {
    const auto& rules = protocol::message_rules();
    const auto rule_of = [&](const Message& m) { return rules[m.index()]; };
    EXPECT_TRUE(rule_of(Message{protocol::Register{}}).client_to_server);
    EXPECT_FALSE(rule_of(Message{protocol::Register{}}).server_to_client);
    EXPECT_FALSE(rule_of(Message{protocol::Register{}}).needs_registration);
    EXPECT_FALSE(rule_of(Message{protocol::RegisterAck{}}).client_to_server);
    EXPECT_TRUE(rule_of(Message{protocol::RegisterAck{}}).server_to_client);
    // StateReply is the only message that legally travels both ways.
    EXPECT_TRUE(rule_of(Message{protocol::StateReply{}}).client_to_server);
    EXPECT_TRUE(rule_of(Message{protocol::StateReply{}}).server_to_client);
    EXPECT_TRUE(rule_of(Message{protocol::ExecuteEvent{}}).server_to_client);
    EXPECT_FALSE(rule_of(Message{protocol::ExecuteEvent{}}).client_to_server);
}

TEST(ConformanceChecker, CleanRegistrationHasNoViolations) {
    ConformanceChecker c = registered_checker();
    EXPECT_EQ(c.frames_observed(), 2u);
}

TEST(ConformanceChecker, MessageBeforeRegistrationIsFlagged) {
    ConformanceChecker c{"test"};
    c.observe(kC2S, protocol::LockReq{1, {}, {}});
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("before registration"), std::string::npos);
}

TEST(ConformanceChecker, WrongDirectionIsFlagged) {
    ConformanceChecker c = registered_checker();
    c.observe(kS2C, protocol::LockReq{1, {}, {}});  // LockReq never travels S2C
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("never travels"), std::string::npos);
}

TEST(ConformanceChecker, UnsolicitedErrorAckIsAllowed) {
    ConformanceChecker c{"test"};
    // Request 0 is the unsolicited slot (e.g. version mismatch before
    // registration); it must not be flagged.
    c.observe(kS2C, protocol::Ack{0, ErrorCode::kBadMessage, "protocol version mismatch"});
    EXPECT_TRUE(c.violations().empty());
}

TEST(ConformanceChecker, AckToUnknownRequestIsFlagged) {
    ConformanceChecker c = registered_checker();
    c.observe(kS2C, protocol::Ack{42, ErrorCode::kOk, ""});
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("unknown"), std::string::npos);
}

TEST(ConformanceChecker, RequestResponsePairingConsumesOnce) {
    ConformanceChecker c = registered_checker();
    c.observe(kC2S, protocol::CoupleReq{5, {}, {}});
    c.observe(kS2C, protocol::Ack{5, ErrorCode::kOk, ""});
    EXPECT_TRUE(c.violations().empty());
    c.observe(kS2C, protocol::Ack{5, ErrorCode::kOk, ""});  // answered twice
    EXPECT_EQ(c.violations().size(), 1u);
}

TEST(ConformanceChecker, ReusedRequestIdIsFlagged) {
    ConformanceChecker c = registered_checker();
    c.observe(kC2S, protocol::CoupleReq{5, {}, {}});
    c.observe(kC2S, protocol::DecoupleReq{5, {}, {}});
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("reused request id"), std::string::npos);
}

TEST(ConformanceChecker, TypedReplyMustMatchRequestKind) {
    ConformanceChecker c = registered_checker();
    c.observe(kC2S, protocol::RegistryQuery{9});
    c.observe(kS2C, protocol::StateReply{9, "x", false, {}, {}});  // wrong reply type
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("does not match"), std::string::npos);
}

TEST(ConformanceChecker, LockLifecycleHappyPath) {
    ConformanceChecker c = registered_checker();
    const ObjectRef source{7, "field"};
    c.observe(kC2S, protocol::LockReq{1, source, {source}});
    c.observe(kS2C, protocol::LockGrant{1});
    c.observe(kC2S, protocol::EventMsg{1, source, "", {}});
    c.observe(kC2S, protocol::ExecuteAck{1});  // own completion
    EXPECT_TRUE(c.violations().empty());
}

TEST(ConformanceChecker, EventWithoutGrantIsFlagged) {
    ConformanceChecker c = registered_checker();
    const ObjectRef source{7, "field"};
    c.observe(kC2S, protocol::LockReq{1, source, {source}});
    c.observe(kC2S, protocol::EventMsg{1, source, "", {}});  // grant never arrived
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("without a LockGrant"), std::string::npos);
}

TEST(ConformanceChecker, GrantWithoutRequestIsFlagged) {
    ConformanceChecker c = registered_checker();
    c.observe(kS2C, protocol::LockGrant{3});
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("without a pending LockReq"), std::string::npos);
}

TEST(ConformanceChecker, DenyClearsTheAction) {
    ConformanceChecker c = registered_checker();
    const ObjectRef source{7, "field"};
    c.observe(kC2S, protocol::LockReq{1, source, {source}});
    c.observe(kS2C, protocol::LockDeny{1, source});
    EXPECT_TRUE(c.violations().empty());
    // The id may not be reused afterwards (client counters are monotonic).
    c.observe(kC2S, protocol::LockReq{1, source, {source}});
    EXPECT_EQ(c.violations().size(), 1u);
}

TEST(ConformanceChecker, ExecuteAckBalancesExecuteEvent) {
    ConformanceChecker c = registered_checker();
    const ObjectRef source{9, "field"};
    const ObjectRef target{7, "field"};
    c.observe(kS2C, protocol::ExecuteEvent{11, source, {target}, "", {}});
    c.observe(kC2S, protocol::ExecuteAck{11});
    EXPECT_TRUE(c.violations().empty());
    c.observe(kC2S, protocol::ExecuteAck{11});  // one ack too many
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("ExecuteAck"), std::string::npos);
}

TEST(ConformanceChecker, ClientFrameAfterUnregisterIsFlagged) {
    ConformanceChecker c = registered_checker();
    c.observe(kC2S, protocol::Unregister{});
    c.observe(kC2S, protocol::RegistryQuery{3});
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("after Unregister"), std::string::npos);
}

TEST(ConformanceChecker, ServerStateQueryPairsWithClientStateReply) {
    ConformanceChecker c = registered_checker();
    c.observe(kS2C, protocol::StateQuery{21, "field"});
    c.observe(kC2S, protocol::StateReply{21, "field", true, {}, {}});
    EXPECT_TRUE(c.violations().empty());
    c.observe(kC2S, protocol::StateReply{22, "field", true, {}, {}});  // nobody asked
    EXPECT_EQ(c.violations().size(), 1u);
}

TEST(ConformanceChecker, MalformedFrameIsFlagged) {
    ConformanceChecker c{"test"};
    const std::vector<std::uint8_t> garbage{0xff, 0xfe, 0x01, 0x02};
    c.observe_frame(kC2S, garbage);
    ASSERT_EQ(c.violations().size(), 1u);
    EXPECT_NE(c.violations().front().find("malformed"), std::string::npos);
}

// --- live interposition ------------------------------------------------------

TEST(ConformanceIntegration, LocalSessionEmitFlowIsCleanUnderChecking) {
    apps::LocalSession s;
    s.set_conformance(true);
    auto& a = s.add_app("editorA", "alice", 1);
    auto& b = s.add_app("editorB", "bob", 2);
    ASSERT_TRUE(a.ui().root().add_child(toolkit::WidgetClass::kTextField, "field").is_ok());
    ASSERT_TRUE(b.ui().root().add_child(toolkit::WidgetClass::kTextField, "field").is_ok());

    Status couple_status = Status::ok();
    a.couple("field", b.ref("field"), [&](const Status& st) { couple_status = st; });
    s.run();
    ASSERT_TRUE(couple_status.is_ok());

    toolkit::Widget* fa = a.ui().find("field");
    ASSERT_NE(fa, nullptr);
    a.emit("field", fa->make_event(toolkit::EventType::kValueChanged, std::string{"hello"}));
    s.run();
    b.emit("field", b.ui().find("field")->make_event(toolkit::EventType::kValueChanged, std::string{"world"}));
    s.run();

    EXPECT_EQ(a.ui().find("field")->text("value"), b.ui().find("field")->text("value"));

    // Both connections were observed and neither tripped the state machine.
    ASSERT_NE(s.conformance(0), nullptr);
    ASSERT_NE(s.conformance(1), nullptr);
    EXPECT_GT(s.conformance(0)->frames_observed(), 4u);
    EXPECT_GT(s.conformance(1)->frames_observed(), 4u);
    EXPECT_TRUE(s.conformance_violations().empty())
        << "first violation: " << s.conformance_violations().front();
}

TEST(ConformanceIntegration, DisconnectAndRequestsStayClean) {
    apps::LocalSession s;
    s.set_conformance(true);
    auto& a = s.add_app("editorA", "alice", 1);
    auto& b = s.add_app("editorB", "bob", 2);
    ASSERT_TRUE(a.ui().root().add_child(toolkit::WidgetClass::kTextField, "field").is_ok());
    ASSERT_TRUE(b.ui().root().add_child(toolkit::WidgetClass::kTextField, "field").is_ok());
    a.couple("field", b.ref("field"));
    s.run();

    a.query_registry([](const std::vector<protocol::RegistrationRecord>&) {});
    s.run();
    s.disconnect(1);  // bob crashes; server cleans up
    a.emit("field", a.ui().find("field")->make_event(toolkit::EventType::kValueChanged, std::string{"solo"}));
    s.run();

    EXPECT_TRUE(s.conformance_violations().empty())
        << "first violation: " << s.conformance_violations().front();
}

}  // namespace
}  // namespace cosoft
