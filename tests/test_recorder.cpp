// Tests for the ActionRecorder — the §3.1 recorded-actions alternative.
#include <gtest/gtest.h>

#include "cosoft/client/recorder.hpp"
#include "helpers.hpp"

namespace cosoft {
namespace {

using client::ActionRecorder;
using client::CoApp;
using testing::Session;
using toolkit::EventType;
using toolkit::Widget;
using toolkit::WidgetClass;

void build_pad(CoApp& app, const std::string& name) {
    Widget* pad = app.ui().root().add_child(WidgetClass::kForm, name).value();
    (void)pad->add_child(WidgetClass::kTextField, "title");
    (void)pad->add_child(WidgetClass::kCanvas, "sketch");
}

TEST(Recorder, CapturesEventsUnderTheObjectOnly) {
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    build_pad(a, "pad");
    (void)a.ui().root().add_child(WidgetClass::kTextField, "unrelated");

    ActionRecorder rec{a, "pad"};
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"t"}));
    a.emit("pad/sketch", a.ui().find("pad/sketch")->make_event(EventType::kStroke, std::string{"s1"}));
    a.emit("unrelated", a.ui().find("unrelated")->make_event(EventType::kValueChanged, std::string{"x"}));

    ASSERT_EQ(rec.log().size(), 2u);
    EXPECT_EQ(rec.log()[0].path, "pad/title");
    EXPECT_EQ(rec.log()[1].path, "pad/sketch");
}

TEST(Recorder, StartStopClearControlCapture) {
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    build_pad(a, "pad");
    ActionRecorder rec{a, "pad"};

    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"one"}));
    rec.stop();
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"two"}));
    rec.start();
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"three"}));
    EXPECT_EQ(rec.log().size(), 2u);
    rec.clear();
    EXPECT_TRUE(rec.log().empty());
}

TEST(Recorder, ReplayOntoLocalObjectReproducesState) {
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    build_pad(a, "pad");
    build_pad(a, "copy");

    ActionRecorder rec{a, "pad"};
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"v"}));
    for (int i = 0; i < 5; ++i) {
        a.emit("pad/sketch",
               a.ui().find("pad/sketch")->make_event(EventType::kStroke, "s" + std::to_string(i)));
    }

    ASSERT_TRUE(rec.replay_onto(*a.ui().find("copy")).is_ok());
    EXPECT_EQ(a.ui().find("copy/title")->text("value"), "v");
    EXPECT_EQ(a.ui().find("copy/sketch")->text_list("strokes").size(), 5u);
    // Replaying did not re-record its own events.
    EXPECT_EQ(rec.log().size(), 6u);
}

TEST(Recorder, ReplayToRemoteInstanceOverTheWire) {
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    CoApp& b = s.add_app("B", "bob", 2);
    build_pad(a, "pad");
    build_pad(b, "pad");
    ActionRecorder::enable_remote_replay(b);

    ActionRecorder rec{a, "pad"};
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"late"}));
    a.emit("pad/sketch", a.ui().find("pad/sketch")->make_event(EventType::kStroke, std::string{"line"}));

    Status st{ErrorCode::kInvalidArgument, "pending"};
    rec.replay_to(b.ref("pad"), [&](const Status& r) { st = r; });
    s.run();
    ASSERT_TRUE(st.is_ok()) << st.message();
    EXPECT_EQ(b.ui().find("pad/title")->text("value"), "late");
    EXPECT_EQ(b.ui().find("pad/sketch")->text_list("strokes"), std::vector<std::string>{"line"});
}

TEST(Recorder, EmptyLogReplaysTrivially) {
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    CoApp& b = s.add_app("B", "bob", 2);
    build_pad(a, "pad");
    build_pad(b, "pad");
    ActionRecorder rec{a, "pad"};
    bool done = false;
    rec.replay_to(b.ref("pad"), [&](const Status& st) { done = st.is_ok(); });
    s.run();
    EXPECT_TRUE(done);
}

TEST(Recorder, CapturesReExecutedEventsFromCoupledPeers) {
    // The recorder sees re-executions too: recording at B while A drives a
    // coupled object captures A's actions as they land.
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    CoApp& b = s.add_app("B", "bob", 2);
    build_pad(a, "pad");
    build_pad(b, "pad");
    a.couple("pad", b.ref("pad"));
    s.run();

    ActionRecorder rec{b, "pad"};
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"from-a"}));
    s.run();
    ASSERT_EQ(rec.log().size(), 1u);
    EXPECT_EQ(rec.log()[0].path, "pad/title");
}

TEST(Recorder, ReplayOntoMissingTargetReportsError) {
    Session s;
    CoApp& a = s.add_app("A", "alice", 1);
    build_pad(a, "pad");
    Widget* bare = a.ui().root().add_child(WidgetClass::kForm, "bare").value();
    ActionRecorder rec{a, "pad"};
    a.emit("pad/title", a.ui().find("pad/title")->make_event(EventType::kValueChanged, std::string{"v"}));
    EXPECT_EQ(rec.replay_onto(*bare).code(), ErrorCode::kUnknownObject);
}

}  // namespace
}  // namespace cosoft
