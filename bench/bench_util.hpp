// Shared helpers for the benchmark harness.
//
// Every bench binary prints (a) a deterministic, virtual-time table that
// regenerates the *shape* of one paper artifact (figure/table/claim), and
// (b) google-benchmark microbenchmarks measuring the real implementation.
// Running the binary with no arguments produces both.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "cosoft/baselines/architectures.hpp"
#include "cosoft/sim/workload.hpp"

namespace cosoft::bench {

/// Prints a header for one reproduced artifact.
inline void artifact_header(const char* id, const char* title, const char* claim) {
    std::printf("\n================================================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("paper claim: %s\n", claim);
    std::printf("================================================================================\n");
}

/// printf into a row of a fixed-width table.
inline void row(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

/// The standard mixed workload used across the architecture comparisons.
inline sim::WorkloadSpec standard_workload(std::uint32_t users) {
    sim::WorkloadSpec spec;
    spec.users = users;
    spec.objects_per_user = 8;
    spec.actions_per_user = 400;
    spec.mean_think_time = 400 * sim::kMillisecond;
    spec.ui_action_cost = 200;                          // 0.2 ms dialogue handling
    spec.semantic_action_cost = 20 * sim::kMillisecond; // moderately expensive semantics
    spec.semantic_fraction = 0.2;
    spec.ui_local_fraction = 0.3;
    spec.seed = 1994;
    return spec;
}

inline baselines::ArchParams standard_params(std::uint32_t users,
                                             sim::SimTime latency = 5 * sim::kMillisecond) {
    baselines::ArchParams p;
    p.users = users;
    p.net_latency = latency;
    p.dispatch_cost = 50;
    return p;
}

/// ms with one decimal from a microsecond count.
inline double ms(double us) { return us / 1000.0; }
inline double ms(std::int64_t us) { return static_cast<double>(us) / 1000.0; }

}  // namespace cosoft::bench
