// A4 — §4 (TORI) ablation: re-executing a coupled query at every instance
// vs. evaluating once and sharing the results.
//
// "From a performance point of view, one might argue that it would be
// preferable to evaluate the query once and share the results. But this
// goes beyond a simple sharing of UI objects. ... On the other hand,
// multiple evaluation is more flexible in that it allows queries to be
// different ... Also, queries can be sent to different databases."
//
// Both strategies run over the real stack: (i) the COSOFT way — the invoke
// button is coupled, every instance runs the query on its own database;
// (ii) the sharing way — one instance evaluates and broadcasts the rendered
// result rows via CoSendCommand.
#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"
#include "cosoft/apps/tori.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using apps::ToriApp;

struct Rig {
    std::unique_ptr<LocalSession> session;
    std::vector<std::unique_ptr<ToriApp>> toris;

    Rig(std::size_t instances, std::size_t db_rows, bool coupled_invoke) {
        session = std::make_unique<LocalSession>();
        for (std::size_t i = 0; i < instances; ++i) {
            auto& app = session->add_app("tori", "u" + std::to_string(i), static_cast<UserId>(i + 1));
            toris.push_back(std::make_unique<ToriApp>(
                app, db::make_literature_db("lib" + std::to_string(i), db_rows, i + 1),
                std::vector<std::string>{"author", "venue", "year"}));
        }
        if (coupled_invoke) {
            for (std::size_t i = 1; i < instances; ++i) {
                toris[0]->couple_full(session->app(i).ref(ToriApp::kRoot));
                session->run();
            }
        }
        // Result-sharing receiver: install rows shipped by the evaluator.
        for (std::size_t i = 0; i < instances; ++i) {
            auto& app = session->app(i);
            app.on_command("results", [&app](InstanceId, std::span<const std::uint8_t> payload) {
                ByteReader r{payload};
                const std::uint32_t n = r.u32();
                std::vector<std::string> rows;
                rows.reserve(n);
                for (std::uint32_t k = 0; k < n && r.ok(); ++k) rows.push_back(r.str());
                if (toolkit::Widget* table = app.ui().find(ToriApp::kResultTable)) {
                    (void)table->set_attribute("rows", std::move(rows));
                }
            });
        }
    }

    std::uint64_t total_bytes() const {
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i < toris.size(); ++i) {
            bytes += session->client_stats(i).bytes_sent;
        }
        return bytes;
    }

    std::uint64_t total_query_executions() const {
        std::uint64_t n = 0;
        for (const auto& t : toris) n += t->database().queries_executed();
        return n;
    }

    /// Strategy (i): the coupled invoke — one button press, K evaluations.
    void invoke_coupled() {
        toris[0]->invoke();
        session->run();
    }

    /// Strategy (ii): evaluate at instance 0, broadcast the rendered rows.
    void invoke_and_share() {
        toris[0]->invoke();
        session->run();
        const auto rows = session->app(0).ui().find(ToriApp::kResultTable)->text_list("rows");
        ByteWriter w;
        w.u32(static_cast<std::uint32_t>(rows.size()));
        for (const auto& rrow : rows) w.str(rrow);
        session->app(0).send_command("results", w.take());
        session->run();
    }
};

void print_sharing_table() {
    artifact_header("A4", "Coupled query re-execution vs result sharing (TORI, §4)",
                    "re-execution costs K evaluations but keeps per-site databases and query variants");
    row("%-12s %-12s %-16s %-14s %-16s %-14s", "instances", "db-rows", "strategy", "evals", "wire-bytes",
        "rows@peer");
    for (const std::size_t instances : {2u, 4u, 8u}) {
        for (const std::size_t rows : {1000u, 20000u}) {
            {
                Rig rig{instances, rows, /*coupled_invoke=*/true};
                const auto bytes0 = rig.total_bytes();
                rig.invoke_coupled();
                row("%-12zu %-12zu %-16s %-14llu %-16llu %-14zu", instances, rows, "re-execute",
                    static_cast<unsigned long long>(rig.total_query_executions()),
                    static_cast<unsigned long long>(rig.total_bytes() - bytes0),
                    rig.session->app(instances - 1).ui().find(ToriApp::kResultTable)->text_list("rows").size());
            }
            {
                Rig rig{instances, rows, /*coupled_invoke=*/false};
                const auto bytes0 = rig.total_bytes();
                rig.invoke_and_share();
                row("%-12zu %-12zu %-16s %-14llu %-16llu %-14zu", instances, rows, "share-results",
                    static_cast<unsigned long long>(rig.total_query_executions()),
                    static_cast<unsigned long long>(rig.total_bytes() - bytes0),
                    rig.session->app(instances - 1).ui().find(ToriApp::kResultTable)->text_list("rows").size());
            }
        }
    }
    std::printf("\nNote: result sharing evaluates once but ships every rendered row to every\n"
                "peer and forces all sites onto one database; re-execution ships one event and\n"
                "lets each site keep its own source — the flexibility TORI wanted (§4).\n");
}

void BM_CoupledReExecution(benchmark::State& state) {
    Rig rig{static_cast<std::size_t>(state.range(0)), 20000, true};
    for (auto _ : state) rig.invoke_coupled();
}
BENCHMARK(BM_CoupledReExecution)->Arg(2)->Arg(8);

void BM_ResultSharing(benchmark::State& state) {
    Rig rig{static_cast<std::size_t>(state.range(0)), 20000, false};
    for (auto _ : state) rig.invoke_and_share();
}
BENCHMARK(BM_ResultSharing)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    print_sharing_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
