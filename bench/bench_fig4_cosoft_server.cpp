// F4 — Figure 4: the COSOFT server-client architecture, measured on the
// real implementation (CoServer + CoApp over in-process channels).
//
// Three parts:
//   (a) a deterministic message-cost table: how many protocol messages one
//       couple / emit-cycle / copy / undo needs as the coupling group grows
//       (the fan-out structure of Fig. 4);
//   (b) google-benchmark wall-time microbenchmarks of the same operations;
//   (c) per-stage latency distributions (p50/p95/p99) of the §3.2 pipeline,
//       read from the obs histograms the server and client record on every
//       emit cycle, written to BENCH_fig4.json.
#include <fstream>

#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"
#include "cosoft/obs/metrics.hpp"
#include "cosoft/toolkit/builder.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using client::CoApp;
using toolkit::EventType;
using toolkit::WidgetClass;

/// Builds a session with `n` apps, each owning one text field "f".
std::unique_ptr<LocalSession> make_session(std::size_t n) {
    auto s = std::make_unique<LocalSession>();
    for (std::size_t i = 0; i < n; ++i) {
        CoApp& app = s->add_app("bench", "user" + std::to_string(i), static_cast<UserId>(i + 1));
        (void)app.ui().root().add_child(WidgetClass::kTextField, "f");
    }
    return s;
}

/// Couples apps 0..g-1 into one group on widget "f".
void couple_group(LocalSession& s, std::size_t g) {
    for (std::size_t i = 1; i < g; ++i) {
        s.app(0).couple("f", s.app(i).ref("f"));
        s.run();
    }
}

void print_message_cost_table() {
    artifact_header("F4", "COSOFT server-client architecture (Fig. 4)",
                    "central server multiplexes callbacks; message cost scales with the coupling group");
    row("%-12s %-16s %-18s %-16s %-14s", "group-size", "couple(msgs)", "emit-cycle(msgs)", "copy-to(msgs)",
        "undo(msgs)");
    for (const std::size_t g : {2u, 4u, 8u, 16u}) {
        auto s = make_session(g);
        const auto before_couple = s->server().stats();
        couple_group(*s, g);
        const auto after_couple = s->server().stats();
        const auto couple_msgs = (after_couple.messages_received - before_couple.messages_received) +
                                 (after_couple.messages_sent - before_couple.messages_sent);

        const auto before_emit = s->server().stats();
        s->app(0).emit("f", s->app(0).ui().find("f")->make_event(EventType::kValueChanged,
                                                                 std::string{"x"}));
        s->run();
        const auto after_emit = s->server().stats();
        const auto emit_msgs = (after_emit.messages_received - before_emit.messages_received) +
                               (after_emit.messages_sent - before_emit.messages_sent);

        const auto before_copy = s->server().stats();
        s->app(0).copy_to("f", s->app(1).ref("f"), protocol::MergeMode::kStrict);
        s->run();
        const auto after_copy = s->server().stats();
        const auto copy_msgs = (after_copy.messages_received - before_copy.messages_received) +
                               (after_copy.messages_sent - before_copy.messages_sent);

        const auto before_undo = s->server().stats();
        s->app(1).undo("f");
        s->run();
        const auto after_undo = s->server().stats();
        const auto undo_msgs = (after_undo.messages_received - before_undo.messages_received) +
                               (after_undo.messages_sent - before_undo.messages_sent);

        row("%-12zu %-16llu %-18llu %-16llu %-14llu", g, static_cast<unsigned long long>(couple_msgs / (g - 1)),
            static_cast<unsigned long long>(emit_msgs), static_cast<unsigned long long>(copy_msgs),
            static_cast<unsigned long long>(undo_msgs));
    }
    std::printf("\nNote: the emit cycle is lock-req/grant + event + per-member execute/ack +\n"
                "lock notifies — linear in group size; copies and undo are independent of it.\n");
}

// --- per-stage latency quantiles ---------------------------------------------

struct StageQuantiles {
    std::string stage;
    std::uint64_t count = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
};

StageQuantiles quantiles_of(const std::string& stage, const obs::Histogram& h) {
    return {stage, h.count(), h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)};
}

/// Runs emit cycles through a coupled group and reads back the per-stage
/// latency histograms the pipeline itself recorded.
std::vector<StageQuantiles> measure_stage_latencies(std::size_t group, std::size_t iters) {
    auto s = make_session(group);
    couple_group(*s, group);

    const auto bounds = obs::Histogram::exponential_buckets(1.0, 2.0, 20);
    obs::Histogram& lock_us = s->server().registry().histogram("cosoft_server_stage_lock_us", bounds);
    obs::Histogram& broadcast_us =
        s->server().registry().histogram("cosoft_server_stage_broadcast_us", bounds);
    obs::Histogram& ack_us = s->server().registry().histogram("cosoft_server_stage_ack_us", bounds);
    obs::Histogram& dispatch_us = obs::Registry::global().histogram("cosoft_client_dispatch_us", bounds);
    obs::Histogram& replay_us = obs::Registry::global().histogram("cosoft_client_replay_us", bounds);
    // The client histograms are process globals; start from a clean slate so
    // the quantiles cover exactly this workload.
    for (obs::Histogram* h : {&lock_us, &broadcast_us, &ack_us, &dispatch_us, &replay_us}) h->reset();

    toolkit::Widget* f = s->app(0).ui().find("f");
    for (std::size_t i = 0; i < iters; ++i) {
        s->app(0).emit("f", f->make_event(EventType::kValueChanged, std::string{"v"}));
        s->run();
    }

    return {
        quantiles_of("client.dispatch", dispatch_us), quantiles_of("server.lock", lock_us),
        quantiles_of("server.broadcast", broadcast_us), quantiles_of("client.replay", replay_us),
        quantiles_of("server.ack", ack_us),
    };
}

void print_stage_latency_table(const std::vector<StageQuantiles>& stages, std::size_t group,
                               std::size_t iters) {
    artifact_header("F4b", "per-stage latency of the §3.2 emit cycle",
                    "every pipeline stage has a measured latency distribution (obs histograms)");
    std::printf("group=%zu, %zu emit cycles; all values in microseconds\n\n", group, iters);
    row("%-18s %-10s %-10s %-10s %-10s", "stage", "samples", "p50(us)", "p95(us)", "p99(us)");
    for (const StageQuantiles& q : stages) {
        row("%-18s %-10llu %-10.1f %-10.1f %-10.1f", q.stage.c_str(),
            static_cast<unsigned long long>(q.count), q.p50, q.p95, q.p99);
    }
}

void write_stage_json(const std::vector<StageQuantiles>& stages, std::size_t group, std::size_t iters,
                      const char* path) {
    std::ofstream f(path);
    f << "{\n  \"bench\": \"fig4_stage_latency\",\n  \"group_size\": " << group
      << ",\n  \"emit_cycles\": " << iters << ",\n  \"unit\": \"us\",\n  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const StageQuantiles& q = stages[i];
        f << "    {\"stage\": \"" << q.stage << "\", \"samples\": " << q.count << ", \"p50\": " << q.p50
          << ", \"p95\": " << q.p95 << ", \"p99\": " << q.p99 << "}"
          << (i + 1 < stages.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("\nwrote %s\n", path);
}

void BM_Register(benchmark::State& state) {
    LocalSession s;
    std::size_t i = 0;
    for (auto _ : state) {
        ++i;
        CoApp& app = s.add_app("bench", "u" + std::to_string(i), static_cast<UserId>(i));
        benchmark::DoNotOptimize(app.instance());
    }
}
BENCHMARK(BM_Register)->Iterations(5000);  // bounded: the session grows with every registration

void BM_CoupleDecouple(benchmark::State& state) {
    const auto g = static_cast<std::size_t>(state.range(0));
    auto s = make_session(g + 1);
    couple_group(*s, g);
    for (auto _ : state) {
        s->app(g).couple("f", s->app(0).ref("f"));
        s->run();
        s->app(g).decouple("f", s->app(0).ref("f"));
        s->run();
    }
}
BENCHMARK(BM_CoupleDecouple)->Arg(2)->Arg(8)->Arg(16);

void BM_EmitUncoupled(benchmark::State& state) {
    auto s = make_session(1);
    toolkit::Widget* f = s->app(0).ui().find("f");
    for (auto _ : state) {
        s->app(0).emit("f", f->make_event(EventType::kValueChanged, std::string{"v"}));
        s->run();
    }
}
BENCHMARK(BM_EmitUncoupled);

void BM_EmitCycle(benchmark::State& state) {
    const auto g = static_cast<std::size_t>(state.range(0));
    auto s = make_session(g);
    couple_group(*s, g);
    toolkit::Widget* f = s->app(0).ui().find("f");
    for (auto _ : state) {
        s->app(0).emit("f", f->make_event(EventType::kValueChanged, std::string{"v"}));
        s->run();
    }
    state.SetLabel("group=" + std::to_string(g));
}
BENCHMARK(BM_EmitCycle)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_CopyTo(benchmark::State& state) {
    const auto widgets = static_cast<std::size_t>(state.range(0));
    auto s = make_session(2);
    for (CoApp* app : {&s->app(0), &s->app(1)}) {
        toolkit::Widget* form = app->ui().root().add_child(WidgetClass::kForm, "form").value();
        for (std::size_t i = 0; i < widgets; ++i) {
            (void)form->add_child(WidgetClass::kTextField, "w" + std::to_string(i));
        }
    }
    for (auto _ : state) {
        s->app(0).copy_to("form", s->app(1).ref("form"), protocol::MergeMode::kStrict);
        s->run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(widgets));
}
BENCHMARK(BM_CopyTo)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CopyUndo(benchmark::State& state) {
    auto s = make_session(2);
    for (auto _ : state) {
        s->app(0).copy_to("f", s->app(1).ref("f"), protocol::MergeMode::kStrict);
        s->run();
        s->app(1).undo("f");
        s->run();
    }
}
BENCHMARK(BM_CopyUndo);

void BM_CommandBroadcast(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto s = make_session(n);
    for (std::size_t i = 1; i < n; ++i) {
        s->app(i).on_command("ping", [](InstanceId, std::span<const std::uint8_t>) {});
    }
    for (auto _ : state) {
        s->app(0).send_command("ping", {1, 2, 3});
        s->run();
    }
    state.SetLabel("fanout=" + std::to_string(n - 1));
}
BENCHMARK(BM_CommandBroadcast)->Arg(2)->Arg(8)->Arg(32);

void BM_MessageCodec(benchmark::State& state) {
    const protocol::Message msg = protocol::ExecuteEvent{
        42,
        {1, "tori/query"},
        {{2, "tori/query"}},
        "author",
        toolkit::Event{EventType::kValueChanged, "tori/query/author", std::string{"Hoppe"}, ""}};
    for (auto _ : state) {
        const auto frame = protocol::encode_message(msg);
        auto decoded = protocol::decode_message(frame);
        benchmark::DoNotOptimize(decoded);
    }
}
BENCHMARK(BM_MessageCodec);

}  // namespace

int main(int argc, char** argv) {
    print_message_cost_table();
    constexpr std::size_t kStageGroup = 8;
    constexpr std::size_t kStageIters = 200;
    const auto stages = measure_stage_latencies(kStageGroup, kStageIters);
    print_stage_latency_table(stages, kStageGroup, kStageIters);
    write_stage_json(stages, kStageGroup, kStageIters, "BENCH_fig4.json");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
