// T1 — the §2.2 comparison table: application-independent synchronization
// approaches in multi-user environments.
//
// The paper's table contrasts the multiplex, UI-replicated, and fully
// replicated (COSOFT) approaches along its flexibility dimensions. This
// bench prints (a) the qualitative capability matrix exactly as the model
// implements it, and (b) a measured row per architecture under the standard
// mixed workload, plus the measured cost of the flexibility levers that only
// the COSOFT model has (partial coupling, dynamic re-grouping).
#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;

void print_capability_matrix() {
    artifact_header("T1", "Comparison of application-independent synchronization approaches (§2.2)",
                    "COSOFT relaxes WYSIWIS on the application-dependency dimension");
    row("%-26s %-16s %-18s %-20s", "dimension", "multiplex", "UI-replicated", "fully-repl. (COSOFT)");
    row("%-26s %-16s %-18s %-20s", "unit shared", "window (I/O)", "dialogue+app", "UI object");
    row("%-26s %-16s %-18s %-20s", "partial coupling", "no", "limited", "yes (per object)");
    row("%-26s %-16s %-18s %-20s", "periodic sync (by state)", "no", "no", "yes (Copy*/undo)");
    row("%-26s %-16s %-18s %-20s", "heterogeneous apps", "no", "no", "yes (compat/corresp.)");
    row("%-26s %-16s %-18s %-20s", "dynamic population", "join only", "static groups", "runtime (de)coupling");
    row("%-26s %-16s %-18s %-20s", "objects survive leave", "no (window gone)", "n/a", "yes");
    row("%-26s %-16s %-18s %-20s", "local response", "never", "UI actions only", "all uncoupled work");
}

void print_measured_rows() {
    std::printf("\n-- measured under the standard mixed workload (8 users, 5 ms one-way) --\n");
    row("%-22s %-14s %-14s %-14s %-12s %-14s", "architecture", "resp-mean(ms)", "resp-p99(ms)", "prop-p95(ms)",
        "messages", "central-busy(ms)");
    const auto workload = sim::generate_workload(standard_workload(8));
    const auto params = standard_params(8);

    const auto mux = baselines::run_multiplex(workload, params);
    const auto uirep = baselines::run_ui_replicated(workload, params);
    const auto full = baselines::run_fully_replicated(workload, params);
    auto partial_params = params;
    partial_params.coupled_fraction = 0.25;
    const auto partial = baselines::run_fully_replicated(workload, partial_params);

    const auto print = [](const char* name, const baselines::ArchMetrics& m) {
        row("%-22s %-14.1f %-14.1f %-14.1f %-12llu %-14.1f", name, ms(m.response.mean()), ms(m.response.p99()),
            ms(m.propagation.p95()), static_cast<unsigned long long>(m.messages), ms(m.central_busy));
    };
    print("multiplex", mux);
    print("ui-replicated", uirep);
    print("fully-replicated", full);
    print("cosoft partial(25%)", partial);
}

void print_dynamic_regrouping_cost() {
    std::printf("\n-- dynamic re-grouping on the real stack (couple+decouple, growing group) --\n");
    row("%-12s %-22s %-20s", "group-size", "regroup msgs (srv in+out)", "closure size after");
    for (const std::size_t g : {2u, 4u, 8u, 16u, 32u}) {
        apps::LocalSession s;
        for (std::size_t i = 0; i < g; ++i) {
            auto& app = s.add_app("ws", "u" + std::to_string(i), static_cast<UserId>(i + 1));
            (void)app.ui().root().add_child(toolkit::WidgetClass::kCanvas, "c");
        }
        for (std::size_t i = 1; i < g; ++i) {
            s.app(0).couple("c", s.app(i).ref("c"));
            s.run();
        }
        const auto before = s.server().stats();
        // One participant leaves its group and joins a fresh partner.
        s.app(1).decouple("c", s.app(0).ref("c"));
        s.run();
        s.app(1).couple("c", s.app(g - 1).ref("c"));
        s.run();
        const auto after = s.server().stats();
        row("%-12zu %-22llu %-20zu", g,
            static_cast<unsigned long long>((after.messages_received - before.messages_received) +
                                            (after.messages_sent - before.messages_sent)),
            s.server().couples().group_of(s.app(0).ref("c")).size());
    }
}

void BM_ComparisonAllArchitectures(benchmark::State& state) {
    const auto workload = sim::generate_workload(standard_workload(8));
    const auto params = standard_params(8);
    for (auto _ : state) {
        auto a = baselines::run_multiplex(workload, params);
        auto b = baselines::run_ui_replicated(workload, params);
        auto c = baselines::run_fully_replicated(workload, params);
        benchmark::DoNotOptimize(a);
        benchmark::DoNotOptimize(b);
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(BM_ComparisonAllArchitectures);

}  // namespace

int main(int argc, char** argv) {
    print_capability_matrix();
    print_measured_rows();
    print_dynamic_regrouping_cost();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
