// F5 — broadcast fan-out on the encode-once message path.
//
// The server serializes each broadcast exactly once and enqueues the same
// refcounted Frame to every partner connection. This bench quantifies that
// against the pre-refactor shape (one encode per recipient) across fan-out
// widths, and emits the numbers as BENCH_fanout.json for the check harness:
//
//   (a) channel level: broadcasts/sec and heap allocations per broadcast for
//       shared-frame vs per-recipient-encode fan-out over SimNetwork pipes;
//   (b) server level: encodes per command broadcast measured from CoServer
//       stats (must be exactly 1 at any width);
//   (c) google-benchmark microbenchmarks of the same two fan-out loops.
//
// `--smoke` trims iteration counts and skips the microbenchmarks so the
// binary doubles as a fast ctest entry (label: bench).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <utility>

#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"
#include "cosoft/net/sim_network.hpp"
#include "cosoft/obs/trace.hpp"
#include "cosoft/protocol/messages.hpp"

// --- allocation accounting ----------------------------------------------------
// Counts every heap allocation in the process; measurements take deltas
// around the timed loop, so unrelated startup noise cancels out.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

// GCC pairs the replaced operator new with the free() inside the replaced
// operator delete and flags a mismatch; both sides really are malloc/free.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
    if (void* p = std::malloc(n)) return p;
    throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using client::CoApp;
using protocol::Frame;
using protocol::Message;

constexpr std::size_t kPayloadBytes = 4 << 10;

Message broadcast_message() {
    return protocol::CommandDeliver{1, "fanout", std::vector<std::uint8_t>(kPayloadBytes, 0x5a)};
}

/// `partners` one-way pipes with a no-op receiver, plus the queue that
/// drains them.
struct FanoutRig {
    net::SimNetwork net;
    std::vector<std::shared_ptr<net::SimChannel>> senders;

    explicit FanoutRig(std::size_t partners) {
        for (std::size_t i = 0; i < partners; ++i) {
            auto [a, b] = net.make_pipe();
            b->on_receive([](const Frame&) {});
            senders.push_back(a);
        }
    }

    /// The new path: one encode, every partner shares the buffer.
    void broadcast_shared(const Message& msg) {
        const Frame frame = protocol::encode_message(msg);
        for (auto& ch : senders) (void)ch->send(frame);
        net.run_all();
    }

    /// The old path: serialize the same message once per recipient.
    void broadcast_per_recipient(const Message& msg) {
        for (auto& ch : senders) (void)ch->send(protocol::encode_message(msg));
        net.run_all();
    }

    /// The shared path through the trace-aware encoder with tracing off: the
    /// invalid context must collapse to the plain encoding at negligible cost.
    void broadcast_trace_disabled(const Message& msg) {
        const Frame frame = protocol::encode_message(msg, obs::TraceContext{});
        for (auto& ch : senders) (void)ch->send(frame);
        net.run_all();
    }
};

struct FanoutSample {
    std::size_t partners = 0;
    double shared_per_sec = 0;
    double per_recipient_per_sec = 0;
    double speedup = 0;
    double allocs_shared = 0;         ///< heap allocations per broadcast
    double allocs_per_recipient = 0;
    double encodes_per_broadcast = 0; ///< server-side, from CoServer stats
};

template <typename Fn>
std::pair<double, double> timed_rate(std::size_t iters, Fn&& fn) {
    fn();  // warm the pipes and the allocator
    const std::uint64_t allocs_before = g_allocs.load();
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    const std::uint64_t allocs = g_allocs.load() - allocs_before;
    return {static_cast<double>(iters) / elapsed.count(),
            static_cast<double>(allocs) / static_cast<double>(iters)};
}

/// Encodes per command broadcast on the real server at width `partners`.
double measured_encodes_per_broadcast(std::size_t partners, std::size_t iters) {
    LocalSession s;
    for (std::size_t i = 0; i < partners + 1; ++i) {
        (void)s.add_app("bench", "u" + std::to_string(i), static_cast<UserId>(i + 1));
    }
    for (std::size_t i = 1; i <= partners; ++i) {
        s.app(i).on_command("fanout", [](InstanceId, std::span<const std::uint8_t>) {});
    }
    s.run();
    const std::uint64_t before = s.server().stats().broadcast_encodes;
    for (std::size_t i = 0; i < iters; ++i) {
        s.app(0).send_command("fanout", std::vector<std::uint8_t>(kPayloadBytes, 0x5a));
        s.run();
    }
    return static_cast<double>(s.server().stats().broadcast_encodes - before) /
           static_cast<double>(iters);
}

/// Overhead of the trace-aware encode path with tracing disabled, as a
/// percentage slowdown of shared-frame broadcasts at width `partners`.
/// Best-of-`reps` on both sides to suppress scheduler noise.
double measured_trace_disabled_overhead(std::size_t partners, std::size_t iters, int reps) {
    const Message msg = broadcast_message();
    double best_plain = 0;
    double best_disabled = 0;
    for (int r = 0; r < reps; ++r) {
        FanoutRig rig(partners);
        best_plain = std::max(best_plain, timed_rate(iters, [&] { rig.broadcast_shared(msg); }).first);
        best_disabled =
            std::max(best_disabled, timed_rate(iters, [&] { rig.broadcast_trace_disabled(msg); }).first);
    }
    return (best_plain - best_disabled) / best_plain * 100.0;
}

/// Server-level emit throughput with the tracer toggled, for the JSON record:
/// the cost of actually recording spans on every pipeline stage.
std::pair<double, double> measured_tracing_rates(std::size_t partners, std::size_t iters) {
    LocalSession s;
    for (std::size_t i = 0; i < partners + 1; ++i) {
        (void)s.add_app("bench", "u" + std::to_string(i), static_cast<UserId>(i + 1));
    }
    for (std::size_t i = 1; i <= partners; ++i) {
        s.app(i).on_command("fanout", [](InstanceId, std::span<const std::uint8_t>) {});
    }
    s.run();
    const auto one_sweep = [&] {
        for (std::size_t i = 0; i < iters; ++i) {
            s.app(0).send_command("fanout", std::vector<std::uint8_t>(kPayloadBytes, 0x5a));
            s.run();
        }
    };
    obs::Tracer::instance().set_enabled(false);
    const double rate_off = timed_rate(1, one_sweep).first * static_cast<double>(iters);
    obs::Tracer::instance().set_enabled(true);
    const double rate_on = timed_rate(1, one_sweep).first * static_cast<double>(iters);
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
    return {rate_off, rate_on};
}

std::vector<FanoutSample> run_fanout_sweep(bool smoke) {
    const std::size_t channel_iters = smoke ? 50 : 2000;
    const std::size_t server_iters = smoke ? 10 : 100;
    artifact_header("F5", "encode-once broadcast fan-out",
                    "one serialization per broadcast, shared by every partner connection");
    row("%-10s %-16s %-20s %-10s %-14s %-16s %-10s", "partners", "shared(bc/s)", "per-recipient(bc/s)",
        "speedup", "allocs/shared", "allocs/per-rec", "encodes");
    std::vector<FanoutSample> out;
    for (const std::size_t partners : {2u, 8u, 32u, 128u}) {
        FanoutSample sample;
        sample.partners = partners;
        const Message msg = broadcast_message();
        {
            FanoutRig rig(partners);
            std::tie(sample.shared_per_sec, sample.allocs_shared) =
                timed_rate(channel_iters, [&] { rig.broadcast_shared(msg); });
        }
        {
            FanoutRig rig(partners);
            std::tie(sample.per_recipient_per_sec, sample.allocs_per_recipient) =
                timed_rate(channel_iters, [&] { rig.broadcast_per_recipient(msg); });
        }
        sample.speedup = sample.shared_per_sec / sample.per_recipient_per_sec;
        sample.encodes_per_broadcast = measured_encodes_per_broadcast(partners, server_iters);
        row("%-10zu %-16.0f %-20.0f %-10.2f %-14.1f %-16.1f %-10.2f", sample.partners,
            sample.shared_per_sec, sample.per_recipient_per_sec, sample.speedup, sample.allocs_shared,
            sample.allocs_per_recipient, sample.encodes_per_broadcast);
        out.push_back(sample);
    }
    return out;
}

struct TracingNumbers {
    double disabled_overhead_percent = 0;  ///< trace-aware encode, tracing off, vs plain encode
    double emits_per_sec_tracing_off = 0;
    double emits_per_sec_tracing_on = 0;
};

void write_json(const std::vector<FanoutSample>& samples, const TracingNumbers& tracing,
                const char* path) {
    std::ofstream f(path);
    f << "{\n  \"bench\": \"fanout\",\n  \"payload_bytes\": " << kPayloadBytes
      << ",\n  \"tracing\": {\"disabled_overhead_percent\": " << tracing.disabled_overhead_percent
      << ", \"emits_per_sec_tracing_off\": " << tracing.emits_per_sec_tracing_off
      << ", \"emits_per_sec_tracing_on\": " << tracing.emits_per_sec_tracing_on << "},\n  \"rows\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const FanoutSample& s = samples[i];
        f << "    {\"partners\": " << s.partners << ", \"encodes_per_broadcast\": " << s.encodes_per_broadcast
          << ", \"shared_broadcasts_per_sec\": " << s.shared_per_sec
          << ", \"per_recipient_broadcasts_per_sec\": " << s.per_recipient_per_sec
          << ", \"speedup\": " << s.speedup << ", \"allocs_per_broadcast_shared\": " << s.allocs_shared
          << ", \"allocs_per_broadcast_per_recipient\": " << s.allocs_per_recipient << "}"
          << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("\nwrote %s\n", path);
}

void BM_BroadcastSharedFrame(benchmark::State& state) {
    FanoutRig rig(static_cast<std::size_t>(state.range(0)));
    const Message msg = broadcast_message();
    for (auto _ : state) rig.broadcast_shared(msg);
    state.SetLabel("partners=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BroadcastSharedFrame)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_BroadcastPerRecipientEncode(benchmark::State& state) {
    FanoutRig rig(static_cast<std::size_t>(state.range(0)));
    const Message msg = broadcast_message();
    for (auto _ : state) rig.broadcast_per_recipient(msg);
    state.SetLabel("partners=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BroadcastPerRecipientEncode)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    }
    const auto samples = run_fanout_sweep(smoke);

    // Tracing must cost nothing when it is off: the trace-aware encoder with
    // an invalid context has to keep pace with the plain one.
    TracingNumbers tracing;
    tracing.disabled_overhead_percent =
        measured_trace_disabled_overhead(/*partners=*/32, smoke ? 50 : 1000, /*reps=*/3);
    std::tie(tracing.emits_per_sec_tracing_off, tracing.emits_per_sec_tracing_on) =
        measured_tracing_rates(/*partners=*/8, smoke ? 20 : 200);
    std::printf("\ntracing-disabled encode overhead: %.2f%% (target < 2%%)\n",
                tracing.disabled_overhead_percent);
    std::printf("emit throughput: %.0f/s tracing off, %.0f/s tracing on\n",
                tracing.emits_per_sec_tracing_off, tracing.emits_per_sec_tracing_on);

    write_json(samples, tracing, "BENCH_fanout.json");

    // Sanity for the check harness: one encode per broadcast at any width,
    // and the shared path must actually win where fan-out is wide.
    for (const auto& s : samples) {
        if (s.encodes_per_broadcast != 1.0) {
            std::fprintf(stderr, "FAIL: %zu partners used %.2f encodes per broadcast (want 1)\n",
                         s.partners, s.encodes_per_broadcast);
            return 1;
        }
    }
    if (tracing.disabled_overhead_percent > 15.0) {
        std::fprintf(stderr, "FAIL: tracing-disabled overhead %.2f%% is far above the 2%% budget\n",
                     tracing.disabled_overhead_percent);
        return 1;
    }
    if (tracing.disabled_overhead_percent > 2.0) {
        std::fprintf(stderr, "WARN: tracing-disabled overhead %.2f%% exceeds the 2%% budget "
                             "(noisy host?)\n",
                     tracing.disabled_overhead_percent);
    }
    if (!smoke) {
        benchmark::Initialize(&argc, argv);
        benchmark::RunSpecifiedBenchmarks();
    }
    return 0;
}
