// A6 — tight vs loose coupling (the "time" relaxation of §1/§2.2).
//
// "Participants may work in parallel more independently... collaboration can
// be based on periodical updates." — and, on the cost side, negotiated
// transfers are "not appropriate for communications with high frequency of
// information exchange."
//
// Measured on the real stack: a driver instance performs K actions on a
// coupled object while a peer is (a) tightly coupled — every action is a
// full floor-control cycle reaching the peer immediately — or (b) loosely
// coupled — the server queues the re-executions and one sync_now delivers
// the batch. The table shows the message/latency trade and the floor-
// contention difference when both sides work simultaneously.
#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using client::CoApp;
using toolkit::EventType;
using toolkit::WidgetClass;

std::unique_ptr<LocalSession> make_pair(sim::SimTime latency, bool loose_peer) {
    auto s = std::make_unique<LocalSession>(net::PipeConfig{.latency = latency});
    for (int i = 0; i < 2; ++i) {
        auto& app = s->add_app("pad", "u" + std::to_string(i), static_cast<UserId>(i + 1));
        (void)app.ui().root().add_child(WidgetClass::kCanvas, "pad");
    }
    s->app(0).couple("pad", s->app(1).ref("pad"));
    s->run();
    if (loose_peer) {
        s->app(1).set_loose("pad", true);
        s->run();
    }
    return s;
}

void print_mode_table() {
    artifact_header("A6", "Tight vs loose coupling (time relaxation, §2.2)",
                    "loose members defer re-execution into batched periodic syncs and stay lock-free");
    row("%-10s %-10s %-12s %-16s %-18s %-14s", "mode", "actions", "rtt(ms)", "server msgs", "completion(ms)",
        "peer strokes");
    for (const sim::SimTime latency : {2 * sim::kMillisecond, 20 * sim::kMillisecond}) {
        for (const std::size_t actions : {10u, 100u}) {
            for (const bool loose : {false, true}) {
                auto s = make_pair(latency, loose);
                const auto msgs_before =
                    s->server().stats().messages_received + s->server().stats().messages_sent;
                const auto t0 = s->net().now();
                for (std::size_t i = 0; i < actions; ++i) {
                    s->app(0).emit("pad", s->app(0).ui().find("pad")->make_event(
                                              EventType::kStroke, "s" + std::to_string(i)));
                    s->run();
                }
                if (loose) {
                    s->app(1).sync_now("pad");
                    s->run();
                }
                const auto msgs_after =
                    s->server().stats().messages_received + s->server().stats().messages_sent;
                row("%-10s %-10zu %-12.0f %-16llu %-18.1f %-14zu", loose ? "loose" : "tight", actions,
                    ms(2 * latency), static_cast<unsigned long long>(msgs_after - msgs_before),
                    ms(s->net().now() - t0), s->app(1).ui().find("pad")->text_list("strokes").size());
            }
        }
    }
    std::printf("\nNote: loose mode trims the per-action fan-out (no lock-notify/execute/ack at\n"
                "the peer) and completes the driver's work sooner; the peer converges at its own\n"
                "pace via one batched sync — the paper's 'periodical updates'.\n");
}

void print_disruption_table() {
    // A tight peer is disabled (locked) for a window around every one of the
    // driver's actions; a loose peer is never touched. Note that a loose
    // member's *own* actions still serialize against the tight subset — the
    // relaxation is on receiving, not on mutating shared state.
    std::printf("\n-- peer disruption while the driver streams 100 actions --\n");
    row("%-10s %-22s %-18s", "peer-mode", "LockNotify deliveries", "peer disabled ever");
    for (const bool loose : {false, true}) {
        auto s = make_pair(1000, loose);
        s->server().journal().clear();
        bool peer_disabled = false;
        s->app(1).ui().set_attribute_observer([&](toolkit::Widget& w, std::string_view attr) {
            if (attr == "enabled" && !w.flag("enabled")) peer_disabled = true;
        });
        for (int i = 0; i < 100; ++i) {
            s->app(0).emit("pad",
                           s->app(0).ui().find("pad")->make_event(EventType::kStroke, "a" + std::to_string(i)));
            s->run();
        }
        std::size_t notifies = 0;
        for (const auto& e : s->server().journal().entries_for(s->app(1).instance())) {
            notifies += (e.message == "LockNotify");
        }
        row("%-10s %-22llu %-18s", loose ? "loose" : "tight", static_cast<unsigned long long>(notifies),
            peer_disabled ? "yes" : "no");
    }
}

void BM_TightStream(benchmark::State& state) {
    auto s = make_pair(0, false);
    int i = 0;
    for (auto _ : state) {
        s->app(0).emit("pad", s->app(0).ui().find("pad")->make_event(EventType::kStroke,
                                                                     "s" + std::to_string(++i)));
        s->run();
    }
}
BENCHMARK(BM_TightStream);

void BM_LooseStreamPlusSync(benchmark::State& state) {
    auto s = make_pair(0, true);
    int i = 0;
    for (auto _ : state) {
        s->app(0).emit("pad", s->app(0).ui().find("pad")->make_event(EventType::kStroke,
                                                                     "s" + std::to_string(++i)));
        s->run();
        if (i % 100 == 0) {
            s->app(1).sync_now("pad");
            s->run();
        }
    }
}
BENCHMARK(BM_LooseStreamPlusSync);

}  // namespace

int main(int argc, char** argv) {
    print_mode_table();
    print_disruption_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
