// A2 — §3.2 ablation: floor-control cost vs. event granularity.
//
// "Such a locking mechanism might become costly if the events were
// fine-grained, such as cursor movements or the typing of single
// characters. However, in our model, most events are high-level callback
// events of UI objects."
//
// Typing one 48-character line into a coupled text field is synchronized at
// three granularities: one callback event (COSOFT's design point), one event
// per 8-character chunk, and one event per keystroke. Each event is a full
// lock/broadcast/ack cycle, so fine granularity multiplies both messages and
// latency-bound completion time.
#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using toolkit::EventType;
using toolkit::WidgetClass;

constexpr std::size_t kLineLength = 48;

std::unique_ptr<LocalSession> make_pair(std::size_t group, sim::SimTime latency) {
    auto s = std::make_unique<LocalSession>(net::PipeConfig{.latency = latency});
    for (std::size_t i = 0; i < group; ++i) {
        auto& app = s->add_app("pad", "u" + std::to_string(i), static_cast<UserId>(i + 1));
        (void)app.ui().root().add_child(WidgetClass::kTextField, "f");
    }
    for (std::size_t i = 1; i < group; ++i) {
        s->app(0).couple("f", s->app(i).ref("f"));
        s->run();
    }
    return s;
}

/// Types the line at the given events-per-line granularity; returns
/// (server messages, virtual completion time).
std::pair<std::uint64_t, sim::SimTime> type_line(LocalSession& s, std::size_t events) {
    const std::string line(kLineLength, 'x');
    const auto msgs_before = s.server().stats().messages_received + s.server().stats().messages_sent;
    const auto t0 = s.net().now();
    toolkit::Widget* f = s.app(0).ui().find("f");
    const std::size_t chunk = kLineLength / events;
    for (std::size_t i = 0; i < events; ++i) {
        if (events == 1) {
            s.app(0).emit("f", f->make_event(EventType::kValueChanged, line));
        } else {
            s.app(0).emit("f", f->make_event(EventType::kKeystroke, line.substr(i * chunk, chunk)));
        }
        s.run();  // the user cannot overlap own actions: each waits its cycle
    }
    const auto msgs_after = s.server().stats().messages_received + s.server().stats().messages_sent;
    return {msgs_after - msgs_before, s.net().now() - t0};
}

void print_granularity_table() {
    artifact_header("A2", "Floor-control cost vs. event granularity (§3.2)",
                    "per-keystroke locking is costly; high-level callback events amortize the cycle");
    row("%-18s %-12s %-12s %-16s %-18s", "granularity", "group", "rtt(ms)", "server msgs", "completion(ms)");
    for (const std::size_t group : {2u, 8u}) {
        for (const sim::SimTime latency : {1 * sim::kMillisecond, 20 * sim::kMillisecond}) {
            for (const std::size_t events : {1u, 6u, 48u}) {
                auto s = make_pair(group, latency);
                const auto [msgs, vtime] = type_line(*s, events);
                const char* label = events == 1 ? "callback(1)" : (events == 6 ? "chunks(6)" : "keystrokes(48)");
                row("%-18s %-12zu %-12.0f %-16llu %-18.1f", label, group, ms(2 * latency),
                    static_cast<unsigned long long>(msgs), ms(vtime));
            }
        }
    }
    std::printf("\nNote: completion time ~ events x (2 RTT + fan-out); messages ~ events x group.\n"
                "This is why COSOFT synchronizes high-level callbacks, not raw input events.\n");
}

void BM_TypeLine(benchmark::State& state) {
    const auto events = static_cast<std::size_t>(state.range(0));
    auto s = make_pair(2, 0);
    for (auto _ : state) {
        auto r = type_line(*s, events);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel("events/line=" + std::to_string(events));
}
BENCHMARK(BM_TypeLine)->Arg(1)->Arg(6)->Arg(48);

}  // namespace

int main(int argc, char** argv) {
    print_granularity_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
