// A3 — §3.3 ablation: the cost of computing the s-compatibility mapping a.
//
// "Of course, calculating a over several levels of nesting may be costly in
// practice. Sometimes it can be pre-defined, or certain heuristics have to
// be used to avoid combinatorial explosion."
//
// Three strategies over the same tree pairs:
//   kNaive       — full backtracking over all one-to-one assignments,
//   kTypeGrouped — candidates restricted to compatible classes (heuristic),
//   kByName      — components match by name only (the pre-defined mapping).
#include "bench_util.hpp"
#include "cosoft/client/compat.hpp"
#include "cosoft/sim/rng.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using client::CorrespondenceRegistry;
using client::MatchStats;
using client::MatchStrategy;
using client::s_compatible;
using toolkit::UiState;
using toolkit::WidgetClass;

/// Builds a tree: `branching` children per node, `depth` levels of nesting.
/// Leaves cycle through widget classes; `shuffle_seed` permutes child order
/// (names stay aligned so kByName still succeeds).
UiState make_tree(std::size_t branching, std::size_t depth, std::uint64_t shuffle_seed) {
    static const WidgetClass kLeafClasses[] = {WidgetClass::kTextField, WidgetClass::kMenu,
                                               WidgetClass::kButton, WidgetClass::kSlider};
    UiState node;
    node.cls = WidgetClass::kForm;
    node.name = "n";
    std::vector<UiState> kids;
    for (std::size_t i = 0; i < branching; ++i) {
        UiState child;
        child.name = "c" + std::to_string(i);
        if (depth > 1) {
            child = make_tree(branching, depth - 1, shuffle_seed * 31 + i);
            child.name = "c" + std::to_string(i);
        } else {
            child.cls = kLeafClasses[i % std::size(kLeafClasses)];
            child.name = "c" + std::to_string(i);
        }
        kids.push_back(std::move(child));
    }
    if (shuffle_seed != 0) {
        sim::Rng rng{shuffle_seed};
        for (std::size_t i = kids.size(); i > 1; --i) {
            std::swap(kids[i - 1], kids[rng.below(i)]);
        }
    }
    node.children = std::move(kids);
    return node;
}

void print_strategy_table() {
    artifact_header("A3", "s-compatibility mapping cost (§3.3)",
                    "naive matching explodes with nesting; heuristics and pre-defined mappings avoid it");
    const CorrespondenceRegistry registry;
    row("%-10s %-8s %-8s %-20s %-20s %-20s", "branching", "depth", "nodes", "naive(cmp)", "grouped(cmp)",
        "by-name(cmp)");
    for (const std::size_t branching : {2u, 4u, 8u}) {
        for (const std::size_t depth : {1u, 2u, 3u}) {
            const UiState left = make_tree(branching, depth, 0);
            const UiState right = make_tree(branching, depth, /*shuffle=*/99);

            MatchStats naive;
            MatchStats grouped;
            MatchStats byname;
            const bool ok_naive = s_compatible(left, right, registry, MatchStrategy::kNaive, &naive).has_value();
            const bool ok_grouped =
                s_compatible(left, right, registry, MatchStrategy::kTypeGrouped, &grouped).has_value();
            const bool ok_byname =
                s_compatible(left, right, registry, MatchStrategy::kByName, &byname).has_value();
            row("%-10zu %-8zu %-8zu %-20llu %-20llu %-20llu", branching, depth, left.node_count(),
                static_cast<unsigned long long>(naive.comparisons),
                static_cast<unsigned long long>(grouped.comparisons),
                static_cast<unsigned long long>(byname.comparisons));
            if (!ok_naive || !ok_grouped || !ok_byname) std::printf("    (unexpected mismatch!)\n");
        }
    }
    std::printf("\nNote: by-name is the pre-defined mapping the paper recommends; the heuristic\n"
                "prunes cross-class candidates; naive pays for every wrong pairing it explores.\n");
}

template <MatchStrategy kStrategy>
void BM_Match(benchmark::State& state) {
    const auto branching = static_cast<std::size_t>(state.range(0));
    const auto depth = static_cast<std::size_t>(state.range(1));
    const CorrespondenceRegistry registry;
    const UiState left = make_tree(branching, depth, 0);
    const UiState right = make_tree(branching, depth, 99);
    for (auto _ : state) {
        auto m = s_compatible(left, right, registry, kStrategy);
        benchmark::DoNotOptimize(m);
    }
    state.SetLabel("b=" + std::to_string(branching) + " d=" + std::to_string(depth));
}
BENCHMARK(BM_Match<MatchStrategy::kNaive>)->Args({4, 2})->Args({8, 2})->Args({8, 3});
BENCHMARK(BM_Match<MatchStrategy::kTypeGrouped>)->Args({4, 2})->Args({8, 2})->Args({8, 3});
BENCHMARK(BM_Match<MatchStrategy::kByName>)->Args({4, 2})->Args({8, 2})->Args({8, 3});

}  // namespace

int main(int argc, char** argv) {
    print_strategy_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
