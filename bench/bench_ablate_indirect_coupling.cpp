// A5 — §4 (COSOFT) ablation: indirect coupling of parameter fields vs
// direct coupling of expensive dependent displays.
//
// "Partial coupling can be very efficient since it allows for indirect
// coupling: often it is sufficient to couple UI objects that contain
// information (e.g. certain input fields for parameters, function terms, or
// other data) from which the content or behavior of other components can be
// generated. For these dependent objects (e.g. simulations or graphical
// displays), direct coupling might be much more costly."
//
// Setup: a parameter slider drives a simulation canvas whose rendered
// content is `render_size` strokes. Indirect: couple the slider — one small
// event crosses the wire, each site re-renders locally. Direct: couple the
// canvas — the rendered strokes themselves are shipped (one state copy per
// update).
#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using toolkit::EventType;
using toolkit::Widget;
using toolkit::WidgetClass;

struct Rig {
    std::unique_ptr<LocalSession> session;
    std::size_t render_size;

    Rig(std::size_t peers, std::size_t render_size_, bool indirect) : render_size(render_size_) {
        session = std::make_unique<LocalSession>();
        for (std::size_t i = 0; i < peers; ++i) {
            auto& app = session->add_app("sim", "u" + std::to_string(i), static_cast<UserId>(i + 1));
            Widget* param = app.ui().root().add_child(WidgetClass::kSlider, "param").value();
            (void)app.ui().root().add_child(WidgetClass::kCanvas, "display").value();
            // The dependent display is *generated* from the parameter.
            param->add_callback(EventType::kValueChanged, [this, &app](Widget& w, const toolkit::Event&) {
                render(app, w.real("value"));
            });
        }
        for (std::size_t i = 1; i < peers; ++i) {
            if (indirect) {
                session->app(0).couple("param", session->app(i).ref("param"));
            } else {
                session->app(0).couple("display", session->app(i).ref("display"));
            }
            session->run();
        }
    }

    void render(client::CoApp& app, double parameter) {
        std::vector<std::string> strokes;
        strokes.reserve(render_size);
        for (std::size_t i = 0; i < render_size; ++i) {
            char buf[48];
            std::snprintf(buf, sizeof buf, "seg(%zu,%.3f)", i, parameter * static_cast<double>(i));
            strokes.emplace_back(buf);
        }
        (void)app.ui().find("display")->set_attribute("strokes", std::move(strokes));
    }

    /// Indirect update: one slider event; remote sites re-render locally.
    void update_indirect(double v) {
        session->app(0).emit("param",
                             session->app(0).ui().find("param")->make_event(EventType::kValueChanged, v));
        session->run();
    }

    /// Direct update: render locally, then ship the display state to peers.
    void update_direct(double v) {
        render(session->app(0), v);
        for (std::size_t i = 1; i < session->app_count(); ++i) {
            session->app(0).copy_to("display", session->app(i).ref("display"),
                                    protocol::MergeMode::kStrict);
        }
        session->run();
    }

    std::uint64_t wire_bytes() const {
        std::uint64_t bytes = 0;
        for (std::size_t i = 0; i < session->app_count(); ++i) {
            bytes += session->client_stats(i).bytes_sent + session->client_stats(i).bytes_received;
        }
        return bytes;
    }
};

void print_indirect_table() {
    artifact_header("A5", "Indirect coupling of parameters vs direct coupling of displays (§4)",
                    "coupling the generating parameter is far cheaper than coupling the generated display");
    row("%-10s %-14s %-12s %-16s %-16s", "peers", "render-size", "mode", "bytes/update", "peer-synced");
    for (const std::size_t peers : {2u, 4u}) {
        for (const std::size_t render : {8u, 64u, 512u}) {
            for (const bool indirect : {true, false}) {
                Rig rig{peers, render, indirect};
                const auto bytes0 = rig.wire_bytes();
                if (indirect) {
                    rig.update_indirect(3.5);
                } else {
                    rig.update_direct(3.5);
                }
                const bool synced =
                    rig.session->app(0).ui().find("display")->text_list("strokes") ==
                    rig.session->app(peers - 1).ui().find("display")->text_list("strokes");
                row("%-10zu %-14zu %-12s %-16llu %-16s", peers, render, indirect ? "indirect" : "direct",
                    static_cast<unsigned long long>(rig.wire_bytes() - bytes0), synced ? "yes" : "no");
            }
        }
    }
    std::printf("\nNote: indirect bytes are constant (one number crosses the wire); direct bytes\n"
                "scale with render size x peers. Both end fully synchronized.\n");
}

void BM_IndirectUpdate(benchmark::State& state) {
    Rig rig{2, static_cast<std::size_t>(state.range(0)), /*indirect=*/true};
    double v = 0;
    for (auto _ : state) rig.update_indirect(v += 0.1);
}
BENCHMARK(BM_IndirectUpdate)->Arg(8)->Arg(512);

void BM_DirectUpdate(benchmark::State& state) {
    Rig rig{2, static_cast<std::size_t>(state.range(0)), /*indirect=*/false};
    double v = 0;
    for (auto _ : state) rig.update_direct(v += 0.1);
}
BENCHMARK(BM_DirectUpdate)->Arg(8)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
    print_indirect_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
