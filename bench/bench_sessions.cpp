// F6 — session-sharded server core on the shared transport reactor.
//
// One server process hosts S independent coupling sessions over real TCP.
// The shared poll(2) reactor owns every connection's socket I/O and a fixed
// worker pool dispatches the sessions, so transport+dispatch thread count is
// constant in S; the legacy baseline (thread-per-connection transport, as
// the pre-reactor server ran) grows linearly with connections. This bench
// measures both shapes at 1/8/64 sessions × 4 connections each — command
// broadcast throughput and measured server-side thread count — and emits
// BENCH_sessions.json for the check harness:
//
//   (a) commands/sec fanned out across all sessions (1 sender + 3 receivers
//       per session, 1 KiB payloads, end-to-end over localhost sockets);
//   (b) server transport+dispatch threads, from /proc/self/status deltas —
//       must be identical at S=1 and S=64 in reactor mode.
//
// `--smoke` trims the round count so the binary doubles as a fast ctest
// entry (label: bench).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cosoft/client/co_app.hpp"
#include "cosoft/net/reactor.hpp"
#include "cosoft/net/tcp.hpp"
#include "cosoft/server/session_manager.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using client::CoApp;

constexpr std::size_t kConnsPerSession = 4;  // 1 sender + 3 command receivers
constexpr std::size_t kPayloadBytes = 1 << 10;

/// Threads of this process, from /proc/self/status (Linux).
int process_thread_count() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return -1;
    char line[256];
    int threads = -1;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
    }
    std::fclose(f);
    return threads;
}

/// One server under load: S sessions × kConnsPerSession TCP clients.
struct SessionRig {
    std::shared_ptr<net::Reactor> reactor;  ///< null in legacy mode
    std::unique_ptr<server::SessionManager> mgr;
    std::unique_ptr<net::TcpListener> listener;
    std::vector<std::unique_ptr<CoApp>> apps;
    std::vector<std::shared_ptr<net::TcpChannel>> clients;
    std::atomic<std::uint64_t> delivered{0};
    int server_threads = 0;

    /// `legacy` = thread-per-connection transport (the pre-reactor shape);
    /// otherwise every accepted fd lands on one shared private reactor.
    bool build(std::size_t sessions, bool legacy) {
        const int before = process_thread_count();

        server::SessionManagerOptions options;
        options.workers = 4;
        net::ListenOptions listen_options;
        listen_options.backlog = 128;
        if (legacy) {
            listen_options.thread_per_connection = true;
        } else {
            reactor = net::Reactor::create();
            listen_options.reactor = reactor;
            options.reactor = reactor;
        }
        mgr = std::make_unique<server::SessionManager>(options);
        auto listen = net::TcpListener::create(0, listen_options);
        if (!listen.is_ok()) return false;
        listener = std::move(listen.value());

        for (std::size_t s = 0; s < sessions; ++s) {
            const std::string room = "room" + std::to_string(s);
            for (std::size_t c = 0; c < kConnsPerSession; ++c) {
                auto client = net::tcp_connect("127.0.0.1", listener->port());
                if (!client.is_ok()) return false;
                auto accepted = listener->accept(2000);
                if (!accepted.is_ok()) return false;
                mgr->attach(accepted.value());
                const std::size_t n = apps.size();
                auto app = std::make_unique<CoApp>("bench", "u" + std::to_string(n),
                                                   static_cast<UserId>(n + 1));
                if (c != 0) {
                    app->on_command("bench", [this](InstanceId, std::span<const std::uint8_t>) {
                        delivered.fetch_add(1, std::memory_order_relaxed);
                    });
                }
                app->connect(client.value(), room);
                clients.push_back(client.value());
                apps.push_back(std::move(app));
            }
        }
        if (!pump_until([&] {
                for (const auto& a : apps) {
                    if (!a->online()) return false;
                }
                return true;
            })) {
            return false;
        }
        server_threads = process_thread_count() - before;
        return true;
    }

    template <typename Pred>
    bool pump_until(Pred pred, int timeout_ms = 20000) {
        using Clock = std::chrono::steady_clock;
        const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
        while (!pred()) {
            std::size_t dispatched = 0;
            for (auto& ch : clients) dispatched += ch->poll();
            if (Clock::now() > deadline) return false;
            if (dispatched == 0) std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        return true;
    }
};

struct SessionSample {
    std::string mode;
    std::size_t sessions = 0;
    int server_threads = 0;
    double commands_per_sec = 0;   ///< broadcast operations completed per second
    double deliveries_per_sec = 0; ///< CommandDeliver frames applied per second
};

/// Runs `rounds` of every-session-broadcasts and measures end-to-end rate.
bool run_one(SessionSample& sample, std::size_t sessions, bool legacy, std::size_t rounds) {
    SessionRig rig;
    if (!rig.build(sessions, legacy)) return false;
    sample.mode = legacy ? "thread_per_connection" : "reactor";
    sample.sessions = sessions;
    sample.server_threads = rig.server_threads;

    const std::vector<std::uint8_t> payload(kPayloadBytes, 0x5a);
    const std::uint64_t expected_per_round =
        static_cast<std::uint64_t>(sessions) * (kConnsPerSession - 1);

    // Warm-up round (also proves the fan-out path before timing).
    for (std::size_t s = 0; s < sessions; ++s) {
        rig.apps[s * kConnsPerSession]->send_command("bench", payload);
    }
    if (!rig.pump_until([&] { return rig.delivered.load() >= expected_per_round; })) return false;

    rig.delivered.store(0);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t s = 0; s < sessions; ++s) {
            rig.apps[s * kConnsPerSession]->send_command("bench", payload);
        }
        if (!rig.pump_until([&] { return rig.delivered.load() >= (r + 1) * expected_per_round; })) {
            return false;
        }
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    sample.commands_per_sec = static_cast<double>(rounds * sessions) / elapsed.count();
    sample.deliveries_per_sec = static_cast<double>(rounds * expected_per_round) / elapsed.count();

    rig.mgr->quiesce();
    const auto violations = rig.mgr->check_invariants();
    for (const auto& v : violations) std::fprintf(stderr, "invariant: %s\n", v.c_str());
    return violations.empty();
}

void write_json(const std::vector<SessionSample>& samples, const char* path) {
    std::ofstream f(path);
    f << "{\n  \"bench\": \"sessions\",\n  \"connections_per_session\": " << kConnsPerSession
      << ",\n  \"payload_bytes\": " << kPayloadBytes << ",\n  \"dispatch_workers\": 4,\n  \"rows\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const SessionSample& s = samples[i];
        f << "    {\"mode\": \"" << s.mode << "\", \"sessions\": " << s.sessions
          << ", \"connections\": " << s.sessions * kConnsPerSession
          << ", \"server_threads\": " << s.server_threads
          << ", \"commands_per_sec\": " << s.commands_per_sec
          << ", \"deliveries_per_sec\": " << s.deliveries_per_sec << "}"
          << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    }
    const std::size_t rounds = smoke ? 20 : 200;

    // Client channels share this process: warm the global client reactor so
    // it never counts against a server's thread delta.
    (void)net::Reactor::shared();

    artifact_header("F6", "session-sharded server over a shared reactor",
                    "constant transport+dispatch threads at any session count, vs "
                    "thread-per-connection growth");
    row("%-24s %-10s %-13s %-16s %-16s", "mode", "sessions", "srv_threads", "commands/s",
        "deliveries/s");

    std::vector<SessionSample> samples;
    for (const bool legacy : {false, true}) {
        for (const std::size_t sessions : {1u, 8u, 64u}) {
            SessionSample sample;
            if (!run_one(sample, sessions, legacy, rounds)) {
                std::fprintf(stderr, "FAIL: %s run at %zu sessions did not complete\n",
                             legacy ? "thread-per-connection" : "reactor", sessions);
                return 1;
            }
            row("%-24s %-10zu %-13d %-16.0f %-16.0f", sample.mode.c_str(), sample.sessions,
                sample.server_threads, sample.commands_per_sec, sample.deliveries_per_sec);
            samples.push_back(sample);
        }
    }

    write_json(samples, "BENCH_sessions.json");

    // Sanity for the check harness: the reactor shape must be flat in S
    // (workers + 1 reactor thread, whether the process hosts 1 session or
    // 64), and the legacy shape must actually grow (it burns a transport
    // thread per connection).
    const SessionSample& reactor_1 = samples[0];
    const SessionSample& reactor_64 = samples[2];
    const SessionSample& legacy_1 = samples[3];
    const SessionSample& legacy_64 = samples[5];
    if (reactor_1.server_threads != reactor_64.server_threads) {
        std::fprintf(stderr, "FAIL: reactor server threads grew with sessions (%d at 1, %d at 64)\n",
                     reactor_1.server_threads, reactor_64.server_threads);
        return 1;
    }
    if (legacy_64.server_threads <= legacy_1.server_threads) {
        std::fprintf(stderr,
                     "FAIL: thread-per-connection baseline did not grow with sessions "
                     "(%d at 1, %d at 64) — is it really thread-per-connection?\n",
                     legacy_1.server_threads, legacy_64.server_threads);
        return 1;
    }
    std::printf("\nreactor server threads: %d at 1 session, %d at 64 sessions (constant)\n",
                reactor_1.server_threads, reactor_64.server_threads);
    std::printf("thread-per-connection baseline: %d at 1 session, %d at 64 sessions\n",
                legacy_1.server_threads, legacy_64.server_threads);
    return 0;
}
