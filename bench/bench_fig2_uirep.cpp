// F2 — Figure 2: the UI-replicated architecture (Suite / Rendezvous).
//
// Reproduces §2.1's critique: "Concurrency on the user interface level is
// gained through buffering and sequential execution of those user actions
// that affect the semantics of the application. If such a semantic action is
// time-consuming, it may of course block the execution of other user's
// actions for an unacceptably long period of time."
//
// The sweep raises the semantic action cost; UI-replicated tail latency
// explodes while the fully replicated model stays flat — the crossover that
// motivates COSOFT's architecture choice.
#include "bench_util.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;

void print_semantic_cost_sweep() {
    artifact_header("F2", "UI-replicated architecture (Fig. 2)",
                    "time-consuming semantic actions block other users' actions");
    row("%-16s %-16s %-16s %-16s %-14s", "sem-cost(ms)", "uirep-p50(ms)", "uirep-p99(ms)", "fullrep-p99(ms)",
        "uirep-waits");
    for (const sim::SimTime cost :
         {sim::kMillisecond / 10, 1 * sim::kMillisecond, 10 * sim::kMillisecond, 100 * sim::kMillisecond,
          1000 * sim::kMillisecond}) {
        auto spec = standard_workload(6);
        spec.semantic_action_cost = cost;
        const auto workload = sim::generate_workload(spec);
        const auto params = standard_params(6);
        const auto uirep = baselines::run_ui_replicated(workload, params);
        const auto fullrep = baselines::run_fully_replicated(workload, params);
        row("%-16.1f %-16.1f %-16.1f %-16.1f %-14llu", ms(cost), ms(uirep.response.p50()),
            ms(uirep.response.p99()), ms(fullrep.response.p99()),
            static_cast<unsigned long long>(uirep.queue_waits));
    }
    std::printf("\nNote: the fully replicated p99 stays bounded by lock RTT + local cost; the\n"
                "UI-replicated p99 tracks the semantic cost times the queue depth behind it.\n");
}

void print_blocking_by_users() {
    std::printf("\n-- blocking vs. population (semantic cost fixed at 100 ms) --\n");
    row("%-8s %-18s %-18s %-14s", "users", "uirep-p99(ms)", "fullrep-p99(ms)", "uirep-waits");
    for (const std::uint32_t users : {2u, 4u, 8u, 16u}) {
        auto spec = standard_workload(users);
        spec.semantic_action_cost = 100 * sim::kMillisecond;
        const auto workload = sim::generate_workload(spec);
        const auto uirep = baselines::run_ui_replicated(workload, standard_params(users));
        const auto fullrep = baselines::run_fully_replicated(workload, standard_params(users));
        row("%-8u %-18.1f %-18.1f %-14llu", users, ms(uirep.response.p99()), ms(fullrep.response.p99()),
            static_cast<unsigned long long>(uirep.queue_waits));
    }
}

void BM_UiReplicatedModel(benchmark::State& state) {
    auto spec = standard_workload(6);
    spec.semantic_action_cost = state.range(0) * sim::kMillisecond;
    const auto workload = sim::generate_workload(spec);
    const auto params = standard_params(6);
    for (auto _ : state) {
        auto m = baselines::run_ui_replicated(workload, params);
        benchmark::DoNotOptimize(m);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(workload.size()));
}
BENCHMARK(BM_UiReplicatedModel)->Arg(1)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
    print_semantic_cost_sweep();
    print_blocking_by_users();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
