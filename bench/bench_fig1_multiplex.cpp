// F1 — Figure 1: the multiplex architecture (shared X window systems).
//
// Reproduces the shape behind §2.1: "collaboration among a limited number of
// users ... long-distance, not strictly synchronous"; every user action
// crosses the network to the single application instance, is dispatched
// sequentially, and the output is multiplexed to each display — so response
// latency carries the full round-trip for *every* interaction and grows with
// the number of users ("does not fit in with the requirements of highly
// parallel processing and real-time response").
#include "bench_util.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;

void print_user_sweep() {
    artifact_header("F1", "Multiplex architecture (Fig. 1)",
                    "every action pays the network round-trip and serializes at the single instance");
    row("%-8s %-10s %-14s %-14s %-14s %-12s %-10s", "users", "rtt(ms)", "resp-mean(ms)", "resp-p95(ms)",
        "prop-p95(ms)", "queue-waits", "messages");
    for (const std::uint32_t users : {1u, 2u, 4u, 8u, 16u}) {
        for (const sim::SimTime latency : {1 * sim::kMillisecond, 5 * sim::kMillisecond, 20 * sim::kMillisecond}) {
            const auto workload = sim::generate_workload(standard_workload(users));
            const auto m = baselines::run_multiplex(workload, standard_params(users, latency));
            row("%-8u %-10.0f %-14.1f %-14.1f %-14.1f %-12llu %-10llu", users, ms(2.0 * latency),
                ms(m.response.mean()), ms(m.response.p95()), ms(m.propagation.p95()),
                static_cast<unsigned long long>(m.queue_waits), static_cast<unsigned long long>(m.messages));
        }
    }
    std::printf("\nNote: resp-mean >= rtt even for pure dialogue actions — the defining multiplex cost.\n");
}

void BM_MultiplexModel(benchmark::State& state) {
    const auto users = static_cast<std::uint32_t>(state.range(0));
    const auto workload = sim::generate_workload(standard_workload(users));
    const auto params = standard_params(users);
    for (auto _ : state) {
        auto m = baselines::run_multiplex(workload, params);
        benchmark::DoNotOptimize(m);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(workload.size()));
}
BENCHMARK(BM_MultiplexModel)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
    print_user_sweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
