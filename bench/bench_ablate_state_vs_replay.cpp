// A1 — §3.1 ablation: re-joining after a period of decoupling.
//
// "One approach is to record all actions occurring on the complex objects
// while they are decoupled, and then re-execute these actions when they are
// coupled. Another approach is to copy the complex UI object's state. The
// first approach is expensive, especially for long periods of decoupling."
//
// Both mechanisms run on the real stack: the replay path ships every logged
// event through the server (CoSendCommand) and re-executes it; the state
// path ships one snapshot (CopyTo). The crossover the paper predicts — the
// replay cost grows linearly with the decoupled period, the state copy cost
// stays bounded by the object size — falls out directly.
#include "bench_util.hpp"
#include "cosoft/apps/local_session.hpp"
#include "cosoft/toolkit/snapshot.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;
using apps::LocalSession;
using toolkit::Event;
using toolkit::EventType;
using toolkit::WidgetClass;

struct Rig {
    std::unique_ptr<LocalSession> session;
    std::vector<Event> log;  // actions recorded while decoupled

    explicit Rig(std::size_t decoupled_actions) {
        session = std::make_unique<LocalSession>();
        for (int i = 0; i < 2; ++i) {
            auto& app = session->add_app("pad", "u" + std::to_string(i), static_cast<UserId>(i + 1));
            (void)app.ui().root().add_child(WidgetClass::kCanvas, "pad");
        }
        // Receiver-side replay handler: unpack one event and re-execute it.
        session->app(1).on_command("replay", [this](InstanceId, std::span<const std::uint8_t> payload) {
            ByteReader r{payload};
            const Event e = toolkit::decode_event(r);
            if (toolkit::Widget* w = session->app(1).ui().find(e.path)) {
                (void)w->apply_feedback(e);
                w->fire_callbacks(e);
            }
        });
        // The decoupled period: d strokes drawn and logged at instance 0.
        toolkit::Widget* pad = session->app(0).ui().find("pad");
        for (std::size_t i = 0; i < decoupled_actions; ++i) {
            Event e = pad->make_event(EventType::kStroke, "stroke-" + std::to_string(i));
            pad->emit(e);
            log.push_back(std::move(e));
        }
    }

    std::uint64_t wire_bytes() const {
        return session->client_stats(0).bytes_sent + session->client_stats(1).bytes_sent;
    }

    void replay_all() {
        for (const Event& e : log) {
            ByteWriter w;
            toolkit::encode(w, e);
            session->app(0).send_command("replay", w.take(), session->app(1).instance());
        }
        session->run();
    }

    void copy_state() {
        session->app(0).copy_to("pad", session->app(1).ref("pad"), protocol::MergeMode::kStrict);
        session->run();
    }
};

void print_rejoin_cost_table() {
    artifact_header("A1", "Rejoin after decoupling: replay actions vs copy state (§3.1)",
                    "replay cost grows with the decoupled period; one state copy stays bounded");
    row("%-22s %-18s %-18s %-18s %-18s", "decoupled actions", "replay msgs", "replay bytes", "copy msgs",
        "copy bytes");
    for (const std::size_t d : {10u, 100u, 1000u, 10000u}) {
        Rig replay_rig{d};
        const auto bytes_before_replay = replay_rig.wire_bytes();
        const auto msgs_before_replay = replay_rig.session->server().stats().messages_received;
        replay_rig.replay_all();
        const auto replay_bytes = replay_rig.wire_bytes() - bytes_before_replay;
        const auto replay_msgs =
            replay_rig.session->server().stats().messages_received - msgs_before_replay;

        Rig copy_rig{d};
        const auto bytes_before_copy = copy_rig.wire_bytes();
        const auto msgs_before_copy = copy_rig.session->server().stats().messages_received;
        copy_rig.copy_state();
        const auto copy_bytes = copy_rig.wire_bytes() - bytes_before_copy;
        const auto copy_msgs = copy_rig.session->server().stats().messages_received - msgs_before_copy;

        row("%-22zu %-18llu %-18llu %-18llu %-18llu", d, static_cast<unsigned long long>(replay_msgs),
            static_cast<unsigned long long>(replay_bytes), static_cast<unsigned long long>(copy_msgs),
            static_cast<unsigned long long>(copy_bytes));
    }
    std::printf("\nNote: replay messages grow linearly with the period; the copy is one message\n"
                "whose size tracks the object state (which the strokes accumulated into).\n"
                "COSOFT therefore synchronizes by state at (re)coupling time and by action after.\n");
}

void BM_RejoinByReplay(benchmark::State& state) {
    const auto d = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Rig rig{d};
        state.ResumeTiming();
        rig.replay_all();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(d));
}
// Iterations bounded: each iteration reconstructs the whole decoupled
// session (the expensive part is setup, not the measured rejoin).
BENCHMARK(BM_RejoinByReplay)->Arg(10)->Arg(100)->Arg(1000)->Iterations(30);

void BM_RejoinByStateCopy(benchmark::State& state) {
    const auto d = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Rig rig{d};
        state.ResumeTiming();
        rig.copy_state();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(d));
}
BENCHMARK(BM_RejoinByStateCopy)->Arg(10)->Arg(100)->Arg(1000)->Iterations(30);

}  // namespace

int main(int argc, char** argv) {
    print_rejoin_cost_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
