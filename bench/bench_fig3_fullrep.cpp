// F3 — Figure 3: the fully replicated architecture (COSOFT's choice).
//
// Reproduces the properties §2.1 credits to full replication: "many
// operations can be performed locally", so uncoupled/local work is
// independent of the population; coupled work costs one floor-control cycle
// plus parallel re-execution. Also shows the partial-coupling lever (§2.2):
// reducing the coupled fraction pushes the system back towards pure local
// cost.
#include "bench_util.hpp"

namespace {

using namespace cosoft;
using namespace cosoft::bench;

void print_population_independence() {
    artifact_header("F3", "Fully replicated architecture (Fig. 3)",
                    "local operations stay fast regardless of population; coupled ones cost one lock cycle");
    row("%-8s %-12s %-16s %-16s %-16s %-12s", "users", "coupled", "resp-mean(ms)", "resp-p95(ms)",
        "prop-p95(ms)", "denials");
    for (const std::uint32_t users : {2u, 4u, 8u, 16u}) {
        for (const double coupled : {0.0, 0.25, 1.0}) {
            auto params = standard_params(users);
            params.coupled_fraction = coupled;
            const auto workload = sim::generate_workload(standard_workload(users));
            const auto m = baselines::run_fully_replicated(workload, params);
            row("%-8u %-12.2f %-16.2f %-16.2f %-16.2f %-12llu", users, coupled, ms(m.response.mean()),
                ms(m.response.p95()), ms(m.propagation.p95()), static_cast<unsigned long long>(m.lock_denials));
        }
    }
    std::printf("\nNote: with coupled=0 the response is population-independent (pure local cost);\n"
                "full coupling adds the lock round-trip but propagation stays bounded (parallel\n"
                "re-execution at every replica, not serialized central execution).\n");
}

void print_latency_sensitivity() {
    std::printf("\n-- coupled-action response vs. network latency (8 users, fully coupled) --\n");
    row("%-12s %-16s %-16s", "rtt(ms)", "resp-mean(ms)", "prop-p95(ms)");
    for (const sim::SimTime lat : {sim::kMillisecond, 5 * sim::kMillisecond, 20 * sim::kMillisecond,
                                   80 * sim::kMillisecond}) {
        const auto workload = sim::generate_workload(standard_workload(8));
        const auto m = baselines::run_fully_replicated(workload, standard_params(8, lat));
        row("%-12.0f %-16.2f %-16.2f", ms(2 * lat), ms(m.response.mean()), ms(m.propagation.p95()));
    }
}

void BM_FullyReplicatedModel(benchmark::State& state) {
    const auto users = static_cast<std::uint32_t>(state.range(0));
    const auto workload = sim::generate_workload(standard_workload(users));
    const auto params = standard_params(users);
    for (auto _ : state) {
        auto m = baselines::run_fully_replicated(workload, params);
        benchmark::DoNotOptimize(m);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(workload.size()));
}
BENCHMARK(BM_FullyReplicatedModel)->Arg(2)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
    print_population_independence();
    print_latency_sensitivity();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
