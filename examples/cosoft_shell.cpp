// cosoft_shell — an interactive terminal client for a running cosoftd.
//
// Builds widgets, couples them with objects in other instances, emits
// events, copies state and drives undo/redo — a hands-on way to exercise the
// whole protocol against a live server from several terminals.
//
// Usage:  ./cosoftd 7494            (terminal 1)
//         ./cosoft_shell 7494 alice (terminal 2)
//         ./cosoft_shell 7494 bob   (terminal 3)
//
// Commands (also: `help`):
//   new <class> <path>          create a widget (class: textfield, canvas, ...)
//   ls                          print the local widget tree
//   who                         list registered instances
//   show <inst> <path>          fetch and print a remote object's state
//   set <path> <text>           emit value-changed (synchronizes if coupled)
//   press <path>                emit activated
//   couple <path> <inst>:<path>     decouple <path> <inst>:<path>
//   copyto <path> <inst>:<path>     copyfrom <inst>:<path> <path>
//   undo <path>                 redo <path>
//   quit
#include <poll.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "cosoft/client/co_app.hpp"
#include "cosoft/common/strings.hpp"
#include "cosoft/net/tcp.hpp"
#include "cosoft/toolkit/snapshot.hpp"

using namespace cosoft;

namespace {

void print_tree(const toolkit::Widget& w, int depth) {
    if (!w.is_root()) {
        std::printf("%*s%s [%s]", depth * 2, "", w.name().c_str(), std::string{to_string(w.cls())}.c_str());
        for (const auto& schema : w.info().attributes) {
            if (!schema.relevant) continue;
            std::printf(" %s=%s", schema.name.c_str(),
                        toolkit::to_display_string(w.attribute(schema.name)).c_str());
        }
        std::printf("\n");
    }
    for (const toolkit::Widget* c : w.children()) print_tree(*c, depth + 1);
}

bool parse_ref(const std::string& token, ObjectRef& out) {
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) return false;
    out.instance = static_cast<InstanceId>(std::strtoul(token.substr(0, colon).c_str(), nullptr, 10));
    out.path = token.substr(colon + 1);
    return !out.path.empty();
}

client::CoApp::Done ack(const std::string& what) {
    return [what](const Status& st) {
        if (st.is_ok()) {
            std::printf("[%s: ok]\n", what.c_str());
        } else {
            std::printf("[%s: %s — %s]\n", what.c_str(), std::string{to_string(st.code())}.c_str(),
                        st.message().c_str());
        }
        std::fflush(stdout);
    };
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: %s <port> <user-name> [session]\n", argv[0]);
        return 1;
    }
    const auto port = static_cast<std::uint16_t>(std::strtoul(argv[1], nullptr, 10));
    const std::string user = argv[2];
    const std::string session = argc > 3 ? argv[3] : "";

    auto conn = net::tcp_connect("127.0.0.1", port);
    if (!conn.is_ok()) {
        std::fprintf(stderr, "cannot reach cosoftd on port %u: %s\n", port, conn.error().message.c_str());
        return 1;
    }
    client::CoApp app{"shell", user, static_cast<UserId>(std::hash<std::string>{}(user) & 0xffff)};
    app.connect(conn.value(), session);
    while (!app.online()) conn.value()->poll_blocking(100);
    std::printf("connected as instance %u (user %s, session %s). Type 'help'.\n", app.instance(),
                user.c_str(), session.empty() ? "(default)" : session.c_str());

    std::string line;
    bool running = true;
    while (running) {
        std::printf("cosoft> ");
        std::fflush(stdout);
        // Wait for stdin while pumping the channel.
        while (true) {
            pollfd pfd{STDIN_FILENO, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, 50);
            conn.value()->poll();
            if (!conn.value()->connected()) {
                std::printf("\nserver gone, bye\n");
                return 0;
            }
            if (ready > 0) break;
        }
        if (!std::getline(std::cin, line)) break;
        std::istringstream in{line};
        std::string cmd;
        in >> cmd;
        if (cmd.empty()) continue;

        if (cmd == "quit" || cmd == "exit") {
            running = false;
        } else if (cmd == "help") {
            std::printf(
                "new <class> <path> | ls | who | show <i> <p> | set <p> <text> | press <p>\n"
                "couple <p> <i>:<p> | decouple <p> <i>:<p> | copyto <p> <i>:<p> | copyfrom <i>:<p> <p>\n"
                "undo <p> | redo <p> | quit\n");
        } else if (cmd == "new") {
            std::string cls_name;
            std::string path;
            in >> cls_name >> path;
            const auto cls = toolkit::widget_class_from_string(cls_name);
            if (!cls) {
                std::printf("unknown class '%s'\n", cls_name.c_str());
                continue;
            }
            const std::string parent{path_parent(path)};
            toolkit::Widget* parent_w =
                parent.empty() ? &app.ui().root() : app.ui().find(parent);
            if (parent_w == nullptr) {
                std::printf("no such parent '%s'\n", parent.c_str());
                continue;
            }
            auto created = parent_w->add_child(*cls, std::string{path_leaf(path)});
            std::printf(created.is_ok() ? "created %s\n" : "error: %s\n",
                        created.is_ok() ? path.c_str() : created.error().message.c_str());
        } else if (cmd == "ls") {
            print_tree(app.ui().root(), 0);
        } else if (cmd == "who") {
            app.query_registry([](const std::vector<protocol::RegistrationRecord>& recs) {
                for (const auto& r : recs) {
                    std::printf("  %u: %s@%s (%s)\n", r.instance, r.user_name.c_str(), r.host_name.c_str(),
                                r.app_name.c_str());
                }
                std::fflush(stdout);
            });
            conn.value()->poll_blocking(500);
        } else if (cmd == "show") {
            InstanceId inst = kInvalidInstance;
            std::string path;
            in >> inst >> path;
            app.fetch_state(ObjectRef{inst, path}, [](Result<toolkit::UiState> r) {
                if (r.is_ok()) {
                    std::printf("%s", to_string(r.value()).c_str());
                } else {
                    std::printf("error: %s\n", r.error().message.c_str());
                }
                std::fflush(stdout);
            });
            conn.value()->poll_blocking(500);
        } else if (cmd == "set" || cmd == "press") {
            std::string path;
            in >> path;
            std::string text;
            std::getline(in, text);
            if (!text.empty() && text.front() == ' ') text.erase(0, 1);
            toolkit::Widget* w = app.ui().find(path);
            if (w == nullptr) {
                std::printf("no such widget '%s'\n", path.c_str());
                continue;
            }
            const toolkit::Event e = (cmd == "set")
                                         ? w->make_event(toolkit::EventType::kValueChanged, text)
                                         : w->make_event(toolkit::EventType::kActivated);
            app.emit(path, e, ack(cmd));
            conn.value()->poll_blocking(500);
        } else if (cmd == "couple" || cmd == "decouple" || cmd == "copyto") {
            std::string path;
            std::string ref_token;
            in >> path >> ref_token;
            ObjectRef remote;
            if (!parse_ref(ref_token, remote)) {
                std::printf("expected <instance>:<path>\n");
                continue;
            }
            if (cmd == "couple") {
                app.couple(path, remote, ack(cmd));
            } else if (cmd == "decouple") {
                app.decouple(path, remote, ack(cmd));
            } else {
                app.copy_to(path, remote, protocol::MergeMode::kFlexible, ack(cmd));
            }
            conn.value()->poll_blocking(500);
        } else if (cmd == "copyfrom") {
            std::string ref_token;
            std::string path;
            in >> ref_token >> path;
            ObjectRef remote;
            if (!parse_ref(ref_token, remote)) {
                std::printf("expected <instance>:<path>\n");
                continue;
            }
            app.copy_from(remote, path, protocol::MergeMode::kFlexible, ack(cmd));
            conn.value()->poll_blocking(500);
        } else if (cmd == "undo" || cmd == "redo") {
            std::string path;
            in >> path;
            if (cmd == "undo") {
                app.undo(path, ack(cmd));
            } else {
                app.redo(path, ack(cmd));
            }
            conn.value()->poll_blocking(500);
        } else {
            std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
        }
    }
    std::printf("bye\n");
    return 0;
}
