// Quickstart: two application instances, one coupled pair of text fields.
//
// Demonstrates the minimal COSOFT workflow:
//   1. build a plain (single-user) widget tree,
//   2. connect to the central server,
//   3. couple a local object with a remote one,
//   4. emit events — they synchronize automatically,
//   5. decouple — both objects persist and diverge again.
//
// Run: ./quickstart
#include <cstdio>

#include "cosoft/client/co_app.hpp"
#include "cosoft/net/sim_network.hpp"
#include "cosoft/server/co_server.hpp"

using namespace cosoft;

namespace {

void show(const char* moment, client::CoApp& a, client::CoApp& b) {
    std::printf("%-34s alice=\"%s\"  bob=\"%s\"\n", moment, a.ui().find("field")->text("value").c_str(),
                b.ui().find("field")->text("value").c_str());
}

}  // namespace

int main() {
    std::printf("== COSOFT quickstart: coupling two text fields ==\n\n");

    // The central server and a deterministic in-process network.
    net::SimNetwork network;
    server::CoServer server;

    // Two independent applications, each with its own widget tree.
    client::CoApp alice{"editorA", "alice", /*user=*/1};
    client::CoApp bob{"editorB", "bob", /*user=*/2};
    for (client::CoApp* app : {&alice, &bob}) {
        auto [client_end, server_end] = network.make_pipe({.latency = 2 * sim::kMillisecond});
        server.attach(server_end);
        app->connect(client_end);
        (void)app->ui().root().add_child(toolkit::WidgetClass::kTextField, "field");
    }
    network.run_all();
    std::printf("registered: alice=instance %u, bob=instance %u\n\n", alice.instance(), bob.instance());

    show("before coupling:", alice, bob);

    // Couple alice's field with bob's. Any compatible objects would do —
    // they only have to exist; no a-priori linkage is required.
    alice.couple("field", bob.ref("field"),
                 [](const Status& st) { std::printf("couple -> %s\n", st.is_ok() ? "ok" : st.message().c_str()); });
    network.run_all();

    // Alice types. The §3.2 multiple-execution cycle locks the group,
    // executes locally, and re-executes the event at bob's replica.
    toolkit::Widget* field = alice.ui().find("field");
    alice.emit("field", field->make_event(toolkit::EventType::kValueChanged, std::string{"Hello, Bob!"}));
    network.run_all();
    show("after alice types:", alice, bob);

    // Bob answers through the same coupled group.
    bob.emit("field", bob.ui().find("field")->make_event(toolkit::EventType::kValueChanged,
                                                         std::string{"Hi Alice — works!"}));
    network.run_all();
    show("after bob answers:", alice, bob);

    // Decoupling: unlike a shared window, the objects do NOT disappear —
    // each keeps its state and evolves privately from here on.
    alice.decouple("field", bob.ref("field"));
    network.run_all();
    alice.emit("field", field->make_event(toolkit::EventType::kValueChanged, std::string{"private notes"}));
    network.run_all();
    show("after decoupling + edit:", alice, bob);

    std::printf("\nserver stats: %llu messages routed, %llu events broadcast, %llu locks granted\n",
                static_cast<unsigned long long>(server.stats().messages_received),
                static_cast<unsigned long long>(server.stats().events_broadcast),
                static_cast<unsigned long long>(server.stats().locks_granted));
    return 0;
}
