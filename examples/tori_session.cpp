// Cooperative TORI (§4): a joint database-retrieval session.
//
// Two researchers couple their TORI interfaces. Operator menus, query input
// fields, the view menu, and the *invocation* of queries synchronize — but
// each instance evaluates the shared query against its own database, exactly
// the behaviour (and the inherent limitation) discussed in the paper:
// "multiple evaluation is more flexible in that it allows queries to be
// different... Also, queries can be sent to different databases."
//
// Run: ./tori_session
#include <cstdio>

#include "cosoft/apps/tori.hpp"
#include "cosoft/net/sim_network.hpp"
#include "cosoft/server/co_server.hpp"
#include "cosoft/toolkit/render.hpp"

using namespace cosoft;

namespace {

void show_results(const char* who, const apps::ToriApp& tori) {
    std::printf("%s: %zu rows (of %zu matches) from %s\n", who, tori.last_result().rows.size(),
                tori.last_result().total_matches, tori.database().name().c_str());
    for (std::size_t i = 0; i < tori.last_result().rows.size() && i < 3; ++i) {
        std::printf("    ");
        for (const auto& cell : tori.last_result().rows[i]) std::printf("%-38s", cell.c_str());
        std::printf("\n");
    }
    if (tori.last_result().rows.size() > 3) std::printf("    ...\n");
}

}  // namespace

int main() {
    std::printf("== Cooperative TORI: joint retrieval over different databases ==\n\n");

    net::SimNetwork network;
    server::CoServer server;
    const auto attach = [&](client::CoApp& app) {
        auto [client_end, server_end] = network.make_pipe({.latency = 2 * sim::kMillisecond});
        server.attach(server_end);
        app.connect(client_end);
    };

    client::CoApp alice_app{"tori", "alice", 1};
    client::CoApp bob_app{"tori", "bob", 2};
    attach(alice_app);
    attach(bob_app);

    // Same interface, different backing catalogues.
    apps::ToriApp alice{alice_app, db::make_literature_db("gmd-library", 400, /*seed=*/7),
                        {"author", "venue", "year"}};
    apps::ToriApp bob{bob_app, db::make_literature_db("uni-library", 250, /*seed=*/13),
                      {"author", "venue", "year"}};
    network.run_all();

    // Full joint session: the entire TORI form is coupled.
    alice.couple_full(bob_app.ref(apps::ToriApp::kRoot));
    network.run_all();
    std::printf("joint session established (whole TORI forms coupled)\n\n");
    std::printf("alice's display:\n%s\n",
                toolkit::render(*alice_app.ui().find(apps::ToriApp::kRoot)).c_str());

    // Alice formulates the query; every edit appears in bob's form too.
    // Each action completes its floor-control cycle before the next one —
    // back-to-back actions on one coupled group would race for the lock and
    // the losers would be undone (exactly the §3.2 serialization).
    alice.set_operator("author", db::CompareOp::kLikeOneOf);
    network.run_all();
    alice.set_operand("author", "Zhao,Hoppe");
    network.run_all();
    alice.set_operator("year", db::CompareOp::kGreaterEq);
    network.run_all();
    alice.set_operand("year", "1990");
    network.run_all();
    std::printf("alice formulates: author like-one-of \"Zhao,Hoppe\", year >= 1990\n");
    std::printf("bob's form mirrors: author=\"%s\" (%s), year=\"%s\" (%s)\n\n",
                bob_app.ui().find(apps::ToriApp::operand_field_path("author"))->text("value").c_str(),
                bob_app.ui().find(apps::ToriApp::operator_menu_path("author"))->text("selection").c_str(),
                bob_app.ui().find(apps::ToriApp::operand_field_path("year"))->text("value").c_str(),
                bob_app.ui().find(apps::ToriApp::operator_menu_path("year"))->text("selection").c_str());

    // One click, two evaluations: the invocation is synchronized, each site
    // queries its own database.
    alice.invoke();
    network.run_all();
    std::printf("alice presses Retrieve -> re-executed at both sites\n");
    show_results("  alice", alice);
    show_results("  bob  ", bob);
    std::printf("  (invocations: alice=%llu bob=%llu)\n\n",
                static_cast<unsigned long long>(alice.invocations()),
                static_cast<unsigned long long>(bob.invocations()));

    // Bob narrows the view to author+year — also synchronized.
    bob.select_view("only:author,year");
    network.run_all();
    bob.invoke();
    network.run_all();
    std::printf("bob selects view only:author,year and re-retrieves\n");
    show_results("  alice", alice);
    show_results("  bob  ", bob);

    // Result-form operation: use a result row to instantiate a new query.
    if (!bob.last_result().rows.empty()) {
        bob.instantiate_from_result(0);
        network.run_all();
        std::printf("\nbob instantiates a follow-up query from result row 0: author=\"%s\"\n",
                    alice_app.ui().find(apps::ToriApp::operand_field_path("author"))->text("value").c_str());
    }

    std::printf("\ndatabase evaluations: gmd=%llu uni=%llu (each shared invocation ran once per site)\n",
                static_cast<unsigned long long>(alice.database().queries_executed()),
                static_cast<unsigned long long>(bob.database().queries_executed()));
    return 0;
}
