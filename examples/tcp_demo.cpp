// The quickstart flow over real TCP sockets on localhost: the server and two
// client applications run in one process but communicate exclusively through
// length-prefixed frames on loopback connections — the same deployment shape
// as the original system's workstation network.
//
// The coupled emit runs with the causal tracer enabled and exports the
// session as Chrome trace JSON (cosoft_trace.json, load in chrome://tracing):
// one trace id spans client dispatch, server lock grant, broadcast, and the
// partner replay.
//
// Run: ./tcp_demo
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "cosoft/client/co_app.hpp"
#include "cosoft/net/tcp.hpp"
#include "cosoft/obs/trace.hpp"
#include "cosoft/server/co_server.hpp"

using namespace cosoft;

namespace {

bool pump_until(std::vector<std::shared_ptr<net::TcpChannel>>& channels, const std::function<bool()>& pred,
                int timeout_ms = 3000) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!pred()) {
        for (auto& ch : channels) ch->poll();
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
}

}  // namespace

int main() {
    std::printf("== COSOFT over TCP (localhost) ==\n\n");

    auto listener = net::TcpListener::create(0);
    if (!listener.is_ok()) {
        std::printf("cannot listen: %s\n", listener.error().message.c_str());
        return 1;
    }
    std::printf("server listening on 127.0.0.1:%u\n", listener.value()->port());

    server::CoServer server;
    std::vector<std::shared_ptr<net::TcpChannel>> pump;

    client::CoApp alice{"editor", "alice", 1};
    client::CoApp bob{"editor", "bob", 2};
    for (client::CoApp* app : {&alice, &bob}) {
        auto conn = net::tcp_connect("127.0.0.1", listener.value()->port());
        if (!conn.is_ok()) {
            std::printf("connect failed: %s\n", conn.error().message.c_str());
            return 1;
        }
        auto accepted = listener.value()->accept(2000);
        if (!accepted.is_ok()) {
            std::printf("accept failed: %s\n", accepted.error().message.c_str());
            return 1;
        }
        server.attach(accepted.value());
        app->connect(conn.value());
        (void)app->ui().root().add_child(toolkit::WidgetClass::kTextField, "field");
        pump.push_back(conn.value());
        pump.push_back(accepted.value());
    }

    if (!pump_until(pump, [&] { return alice.online() && bob.online(); })) {
        std::printf("registration timed out\n");
        return 1;
    }
    std::printf("registered over sockets: alice=%u bob=%u\n", alice.instance(), bob.instance());

    bool coupled = false;
    alice.couple("field", bob.ref("field"), [&](const Status& st) { coupled = st.is_ok(); });
    if (!pump_until(pump, [&] { return coupled && bob.is_coupled("field"); })) {
        std::printf("coupling timed out\n");
        return 1;
    }
    std::printf("coupled alice:field <-> bob:field\n");

    obs::Tracer::instance().set_enabled(true);
    alice.emit("field", alice.ui().find("field")->make_event(toolkit::EventType::kValueChanged,
                                                             std::string{"hello over TCP"}));
    if (!pump_until(pump, [&] { return bob.ui().find("field")->text("value") == "hello over TCP"; })) {
        std::printf("synchronization timed out\n");
        return 1;
    }
    std::printf("alice typed -> bob sees: \"%s\"\n", bob.ui().find("field")->text("value").c_str());

    pump_until(pump, [&] { return server.locks().locked_count() == 0; });
    obs::Tracer::instance().set_enabled(false);

    std::printf("\ntraced stages of that one coupled event:\n");
    for (const obs::Span& span : obs::Tracer::instance().collect()) {
        std::printf("  trace=%016llx span=%-18s %llu ns\n",
                    static_cast<unsigned long long>(span.trace), span.name,
                    static_cast<unsigned long long>(span.duration_ns));
    }
    std::ofstream("cosoft_trace.json") << obs::Tracer::instance().chrome_trace_json();
    std::printf("wrote cosoft_trace.json (load in chrome://tracing)\n");
    std::printf("\nwire traffic: alice sent %llu frames (%llu bytes), received %llu frames (%llu bytes)\n",
                static_cast<unsigned long long>(pump[0]->stats().frames_sent),
                static_cast<unsigned long long>(pump[0]->stats().bytes_sent),
                static_cast<unsigned long long>(pump[0]->stats().frames_received),
                static_cast<unsigned long long>(pump[0]->stats().bytes_received));
    return 0;
}
