// Moderated classroom: the §4 coordination interface end-to-end.
//
// A moderator console (which owns none of the coupled objects) surveys the
// classroom through the registration records, inspects a student's
// environment through the read-only FetchState flow, and wires students
// together with RemoteCouple — all while an "intelligent demon" watches a
// struggling student and raises an automatic help request.
//
// Run: ./moderated_classroom
#include <cstdio>

#include "cosoft/apps/classroom.hpp"
#include "cosoft/apps/local_session.hpp"
#include "cosoft/apps/moderator.hpp"

using namespace cosoft;

int main() {
    std::printf("== Moderated classroom: console + demon ==\n\n");

    apps::LocalSession session;
    client::CoApp& console_app = session.add_app("console", "moderator", 1);
    apps::ModeratorApp console{console_app};

    client::CoApp& teacher_app = session.add_app("board", "hoppe", 2);
    apps::TeacherApp teacher{teacher_app};

    client::CoApp& s1 = session.add_app("exercise", "nelson", 11);
    client::CoApp& s2 = session.add_app("exercise", "frank", 12);
    apps::StudentApp nelson{s1, "Simplify (x^2-1)/(x-1)"};
    apps::StudentApp frank{s2, "Simplify (x^2-1)/(x-1)"};
    apps::Demon demon{nelson, apps::Demon::Policy{.rewrite_threshold = 3, .erase_threshold = 2}};

    // The console surveys the classroom ("stylized form").
    console.refresh();
    session.run();
    std::printf("classroom registry:\n");
    for (const auto& item : console_app.ui().find(apps::ModeratorApp::kParticipants)->text_list("items")) {
        std::printf("  %s\n", item.c_str());
    }

    // Nelson struggles: three rewrites trip the demon.
    nelson.answer("x - 1");
    session.run();
    nelson.answer("x + 1 ... no wait");
    session.run();
    nelson.answer("??");
    session.run();
    std::printf("\ndemon triggered: %s (rewrites=%zu, erasures=%zu)\n", demon.triggered() ? "yes" : "no",
                demon.rewrites(), demon.erasures());
    for (const auto& req : teacher.requests()) {
        std::printf("teacher inbox [%s]: instance %u: \"%s\"\n", req.automatic ? "demon" : "direct",
                    req.from, req.note.c_str());
    }

    // The moderator inspects Nelson's environment before deciding what to
    // couple (the "potentially simplified graphical representation").
    console.inspect(s1.instance());
    session.run();
    std::printf("\nnelson's environment (couplable objects):\n");
    for (const auto& path : console.object_paths()) std::printf("  %s\n", path.c_str());

    // Peer help: the moderator couples the two students' answers so Frank
    // can assist — initiated entirely from outside both applications.
    console.couple_objects(s1.ref(apps::StudentApp::kAnswer), s2.ref(apps::StudentApp::kAnswer));
    session.run();
    frank.answer("x + 1 (cancel the (x-1) factor)");
    session.run();
    std::printf("\nfrank helps -> nelson's field now reads: \"%s\"\n",
                s1.ui().find(apps::StudentApp::kAnswer)->text("value").c_str());

    // Session over: decouple; both keep their final state.
    console.decouple_objects(s1.ref(apps::StudentApp::kAnswer), s2.ref(apps::StudentApp::kAnswer));
    session.run();
    std::printf("decoupled; couple links remaining: %zu\n", session.server().couples().link_count());
    return 0;
}
