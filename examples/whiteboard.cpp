// Dynamic population (§2.2): a shared whiteboard where participants form
// and reshape sub-groups at runtime.
//
// Four participants each own a canvas. Sub-groups are pure runtime
// decisions: {p0,p1} and {p2,p3} first, then p1 migrates to the second
// group. Undo (historical UI states) rolls a canvas back after a state copy.
//
// Run: ./whiteboard
#include <cstdio>

#include "cosoft/client/co_app.hpp"
#include "cosoft/net/sim_network.hpp"
#include "cosoft/server/co_server.hpp"

using namespace cosoft;

namespace {

void show(const std::vector<client::CoApp*>& apps) {
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto strokes = apps[i]->ui().find("canvas")->text_list("strokes");
        std::printf("  p%zu: %zu strokes [", i, strokes.size());
        for (std::size_t j = 0; j < strokes.size(); ++j) std::printf("%s%s", j ? ", " : "", strokes[j].c_str());
        std::printf("]\n");
    }
}

}  // namespace

int main() {
    std::printf("== Whiteboard: dynamic sub-groups over coupled canvases ==\n\n");

    net::SimNetwork network;
    server::CoServer server;
    std::vector<std::unique_ptr<client::CoApp>> owned;
    std::vector<client::CoApp*> p;
    for (int i = 0; i < 4; ++i) {
        owned.push_back(std::make_unique<client::CoApp>("whiteboard", "user" + std::to_string(i),
                                                        static_cast<UserId>(20 + i)));
        auto [client_end, server_end] = network.make_pipe({.latency = sim::kMillisecond});
        server.attach(server_end);
        owned.back()->connect(client_end);
        (void)owned.back()->ui().root().add_child(toolkit::WidgetClass::kCanvas, "canvas");
        p.push_back(owned.back().get());
    }
    network.run_all();

    const auto draw = [&](int who, const std::string& stroke) {
        p[static_cast<std::size_t>(who)]->emit(
            "canvas", p[static_cast<std::size_t>(who)]->ui().find("canvas")->make_event(
                          toolkit::EventType::kStroke, stroke));
        network.run_all();
    };

    std::printf("runtime sub-groups: {p0,p1} and {p2,p3}\n");
    p[0]->couple("canvas", p[1]->ref("canvas"));
    p[2]->couple("canvas", p[3]->ref("canvas"));
    network.run_all();

    draw(0, "circle@p0");
    draw(3, "box@p3");
    show(p);

    std::printf("\np1 leaves group 1 and joins group 2 (runtime re-grouping)\n");
    p[0]->decouple("canvas", p[1]->ref("canvas"));
    network.run_all();
    p[1]->couple("canvas", p[2]->ref("canvas"));
    network.run_all();

    draw(2, "arrow@p2");
    show(p);
    std::printf("  (p0 kept its canvas but no longer receives strokes)\n");

    // Late joining via synchronization by state: p0 re-joins group 2 and
    // first copies the current canvas state from p2, then couples.
    std::printf("\np0 re-joins: CopyFrom(p2) then couple — the §3.1 late-join pattern\n");
    p[0]->copy_from(p[2]->ref("canvas"), "canvas", protocol::MergeMode::kStrict);
    network.run_all();
    p[0]->couple("canvas", p[2]->ref("canvas"));
    network.run_all();
    draw(1, "note@p1");
    show(p);

    // Undo: p0's canvas state before the CopyFrom is stored on the server.
    std::printf("\np0 undoes the state copy (historical UI states on the server)\n");
    p[0]->undo("canvas");
    network.run_all();
    show(p);

    // Loose coupling: p3 switches to periodic updates; strokes queue at the
    // server until p3 syncs (the §2.2 time relaxation).
    std::printf("\np3 goes loose (periodic updates); p1 keeps drawing\n");
    p[3]->set_loose("canvas", true);
    network.run_all();
    draw(1, "fast-1");
    draw(1, "fast-2");
    std::printf("  p3 strokes now: %zu (deferred at server: %zu)\n",
                p[3]->ui().find("canvas")->text_list("strokes").size(),
                server.deferred_count(p[3]->ref("canvas")));
    p[3]->sync_now("canvas");
    network.run_all();
    std::printf("  after sync_now: p3 strokes: %zu\n",
                p[3]->ui().find("canvas")->text_list("strokes").size());

    std::printf("\nserver: %llu couple links active, %llu undo states remaining for p0\n",
                static_cast<unsigned long long>(server.couples().link_count()),
                static_cast<unsigned long long>(server.history().undo_depth(p[0]->ref("canvas"))));
    return 0;
}
