// The COSOFT classroom scenario (§4): a teacher on the electronic blackboard
// and three students on local workstations.
//
//   - students work privately on an exercise;
//   - one student requests help (CoSendCommand, buffered at the teacher);
//   - the teacher pulls that student's work into the public board area
//     (synchronization by state) and couples it for live discussion
//     (synchronization by action);
//   - the teacher corrects the answer publicly — the student's own
//     environment updates;
//   - the discussion ends; the board keeps its content; undo restores the
//     student's pre-correction answer from the server's historical UI states.
//
// Run: ./classroom
#include <cstdio>

#include "cosoft/apps/classroom.hpp"
#include "cosoft/net/sim_network.hpp"
#include "cosoft/server/co_server.hpp"

using namespace cosoft;

int main() {
    std::printf("== COSOFT classroom: teacher liveboard + 3 student workstations ==\n\n");

    net::SimNetwork network;
    server::CoServer server;
    const net::PipeConfig wire{.latency = 3 * sim::kMillisecond};

    const auto attach = [&](client::CoApp& app) {
        auto [client_end, server_end] = network.make_pipe(wire);
        server.attach(server_end);
        app.connect(client_end);
    };

    client::CoApp teacher_app{"liveboard", "hoppe", 1};
    attach(teacher_app);
    apps::TeacherApp teacher{teacher_app};

    client::CoApp s1_app{"exercise", "nelson", 11};
    client::CoApp s2_app{"exercise", "frank", 12};
    client::CoApp s3_app{"exercise", "jian", 13};
    attach(s1_app);
    attach(s2_app);
    attach(s3_app);
    apps::StudentApp s1{s1_app, "Approximate sqrt(2)"};
    apps::StudentApp s2{s2_app, "Approximate sqrt(2)"};
    apps::StudentApp s3{s3_app, "Approximate sqrt(2)"};
    network.run_all();

    teacher.present_slide("lesson-02-square-roots.png");
    network.run_all();
    std::printf("teacher presents: %s\n\n", teacher_app.ui().find(apps::TeacherApp::kSlide)->text("source").c_str());

    // Students work independently — nothing is coupled yet.
    s1.answer("x = 1.4");
    s2.answer("x = 1.41421");
    s3.answer("x = 2/sqrt(2)");
    s1.sketch("newton-iteration(x0=1)");
    network.run_all();
    std::printf("students answered privately: \"%s\" | \"%s\" | \"%s\"\n\n",
                s1_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str(),
                s2_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str(),
                s3_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str());

    // Student 1 asks for help; the message is buffered at the teacher.
    s1.request_help("Is one decimal digit enough?");
    network.run_all();
    for (const apps::HelpRequest& req : teacher.requests()) {
        std::printf("teacher inbox: instance %u asks: \"%s\"\n", req.from, req.note.c_str());
    }

    // The teacher opens a public discussion of student 1's work: state copy
    // into the board's public area, then live coupling of answer + scratch.
    teacher.begin_public_discussion(s1_app.instance());
    network.run_all();
    std::printf("\npublic area now shows: \"%s\" (+%zu scratch strokes)\n",
                teacher_app.ui().find(apps::TeacherApp::kPublicAnswer)->text("value").c_str(),
                teacher_app.ui().find(apps::TeacherApp::kPublicScratch)->text_list("strokes").size());

    // The teacher corrects the answer on the board; the correction is
    // re-executed in the student's environment.
    teacher_app.emit(apps::TeacherApp::kPublicAnswer,
                     teacher_app.ui()
                         .find(apps::TeacherApp::kPublicAnswer)
                         ->make_event(toolkit::EventType::kValueChanged, std::string{"x = 1.41 (2 digits)"}));
    network.run_all();
    std::printf("teacher corrects on the board -> student sees: \"%s\"\n",
                s1_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str());

    // Meanwhile the un-discussed students remain untouched.
    std::printf("other students unaffected: \"%s\" | \"%s\"\n",
                s2_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str(),
                s3_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str());

    teacher.end_public_discussion();
    network.run_all();

    // After decoupling, the board keeps the discussed state while the
    // student continues privately.
    s1.answer("x = 1.41421356");
    network.run_all();
    std::printf("\nafter decoupling: board=\"%s\", student=\"%s\"\n",
                teacher_app.ui().find(apps::TeacherApp::kPublicAnswer)->text("value").c_str(),
                s1_app.ui().find(apps::StudentApp::kAnswer)->text("value").c_str());

    // Indirect coupling demo (§4): couple only the parameter sliders of
    // students 2 and 3; each simulation re-renders locally.
    s2_app.couple(apps::StudentApp::kParam, s3_app.ref(apps::StudentApp::kParam));
    network.run_all();
    s2.set_parameter(3.0);
    network.run_all();
    std::printf("\nindirect coupling: param slider coupled, simulations re-rendered locally\n");
    std::printf("  s2 renders=%llu strokes=%zu | s3 renders=%llu strokes=%zu (identical content: %s)\n",
                static_cast<unsigned long long>(s2.simulation_renders()),
                s2_app.ui().find(apps::StudentApp::kSimulation)->text_list("strokes").size(),
                static_cast<unsigned long long>(s3.simulation_renders()),
                s3_app.ui().find(apps::StudentApp::kSimulation)->text_list("strokes").size(),
                s2_app.ui().find(apps::StudentApp::kSimulation)->text_list("strokes") ==
                        s3_app.ui().find(apps::StudentApp::kSimulation)->text_list("strokes")
                    ? "yes"
                    : "no");

    std::printf("\nserver: %llu group updates, %llu states applied, %llu events broadcast\n",
                static_cast<unsigned long long>(server.stats().group_updates),
                static_cast<unsigned long long>(server.stats().states_applied),
                static_cast<unsigned long long>(server.stats().events_broadcast));
    return 0;
}
