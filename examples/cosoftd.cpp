// cosoftd — a standalone COSOFT server daemon over TCP.
//
// Runs the session-sharded central controller on a port: a SessionManager
// hosting any number of named coupling sessions, created on demand as
// clients register into them. This mirrors (and extends) the deployment of
// the original system: one coordinator process, applications on
// workstations around it — now serving many independent sessions at once.
//
// Threading: one private transport reactor owns every connection's socket
// I/O, a small worker pool dispatches session traffic (serial per session,
// concurrent across sessions), and the main thread only accepts. Thread
// count is O(workers + 1), independent of connections and sessions.
//
// Usage: ./cosoftd [port] [--workers N] [--max-seconds N]
//   port           listening port (default 7494; 0 = ephemeral, printed)
//   --workers      dispatch worker threads (default 4)
//   --max-seconds  optional self-termination for scripted runs
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cosoft/net/reactor.hpp"
#include "cosoft/net/tcp.hpp"
#include "cosoft/server/session_manager.hpp"

using namespace cosoft;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
    std::uint16_t port = 7494;
    long max_seconds = -1;
    std::size_t workers = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-seconds") == 0 && i + 1 < argc) {
            max_seconds = std::strtol(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else {
            port = static_cast<std::uint16_t>(std::strtoul(argv[i], nullptr, 10));
        }
    }
    if (workers == 0) workers = 1;  // inline mode needs a pump; always pool here

    // A private reactor keeps the registered-fd invariant exact: every fd it
    // owns is one of this server's connections.
    auto reactor = net::Reactor::create();
    net::ListenOptions listen_options;
    listen_options.reactor = reactor;
    auto listener = net::TcpListener::create(port, listen_options);
    if (!listener.is_ok()) {
        std::fprintf(stderr, "cosoftd: cannot listen on port %u: %s\n", port,
                     listener.error().message.c_str());
        return 1;
    }
    std::printf("cosoftd: listening on 127.0.0.1:%u (%zu workers + 1 reactor thread)\n",
                listener.value()->port(), workers);
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    server::SessionManagerOptions options;
    options.workers = workers;
    options.reactor = reactor;
    server::SessionManager manager(options);

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t last_reported_frames = 0;

    while (!g_stop.load()) {
        // The accept loop is all this thread does: frames dispatch on the
        // worker pool, socket I/O on the reactor.
        auto accepted = listener.value()->accept(/*timeout_ms=*/200);
        if (accepted.is_ok()) {
            const InstanceId id = manager.attach(accepted.value());
            std::printf("cosoftd: connection accepted, pre-assigned instance %u\n", id);
            std::fflush(stdout);
        }

        const std::uint64_t routed =
            manager.registry().counter("cosoft_server_sessions_frames_routed_total").value();
        if (routed >= last_reported_frames + 1000) {
            last_reported_frames = routed;
            std::printf("cosoftd: %llu frames routed, %zu connections, %zu sessions\n",
                        static_cast<unsigned long long>(routed), manager.connection_count(),
                        manager.session_count());
            std::fflush(stdout);
        }
        if (max_seconds >= 0 &&
            std::chrono::steady_clock::now() - start > std::chrono::seconds(max_seconds)) {
            break;
        }
    }

    std::printf("cosoftd: shutting down — %llu frames routed across %llu sessions created\n",
                static_cast<unsigned long long>(
                    manager.registry().counter("cosoft_server_sessions_frames_routed_total").value()),
                static_cast<unsigned long long>(
                    manager.registry().counter("cosoft_server_sessions_created_total").value()));
    return 0;
}
