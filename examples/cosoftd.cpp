// cosoftd — a standalone COSOFT server daemon over TCP.
//
// Runs the central controller on a port; any number of CoApp clients (from
// any process on the machine) can connect with net::tcp_connect and register.
// This mirrors the deployment of the original system: one coordinator,
// applications on workstations around it.
//
// Usage: ./cosoftd [port] [--max-seconds N]
//   port           listening port (default 7494; 0 = ephemeral, printed)
//   --max-seconds  optional self-termination for scripted runs
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "cosoft/net/tcp.hpp"
#include "cosoft/server/co_server.hpp"

using namespace cosoft;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
    std::uint16_t port = 7494;
    long max_seconds = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--max-seconds") == 0 && i + 1 < argc) {
            max_seconds = std::strtol(argv[++i], nullptr, 10);
        } else {
            port = static_cast<std::uint16_t>(std::strtoul(argv[i], nullptr, 10));
        }
    }

    auto listener = net::TcpListener::create(port);
    if (!listener.is_ok()) {
        std::fprintf(stderr, "cosoftd: cannot listen on port %u: %s\n", port,
                     listener.error().message.c_str());
        return 1;
    }
    std::printf("cosoftd: listening on 127.0.0.1:%u\n", listener.value()->port());
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    server::CoServer server;
    std::vector<std::shared_ptr<net::TcpChannel>> channels;
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t last_reported_messages = 0;

    while (!g_stop.load()) {
        // Accept anything pending (non-blocking poll on the listen socket).
        while (true) {
            auto accepted = listener.value()->accept(/*timeout_ms=*/0);
            if (!accepted.is_ok()) break;
            const InstanceId id = server.attach(accepted.value());
            channels.push_back(accepted.value());
            std::printf("cosoftd: connection accepted, pre-assigned instance %u\n", id);
            std::fflush(stdout);
        }

        // Dispatch inbound frames on this (single) server thread.
        std::size_t dispatched = 0;
        for (auto& ch : channels) dispatched += ch->poll();

        // Drop closed channels (CoServer already cleaned their state).
        std::erase_if(channels, [](const auto& ch) { return !ch->connected(); });

        if (dispatched == 0) std::this_thread::sleep_for(std::chrono::microseconds(500));

        const auto& st = server.stats();
        if (st.messages_received >= last_reported_messages + 1000) {
            last_reported_messages = st.messages_received;
            std::printf("cosoftd: %llu msgs in, %llu out, %zu connections, %zu couple links\n",
                        static_cast<unsigned long long>(st.messages_received),
                        static_cast<unsigned long long>(st.messages_sent), channels.size(),
                        server.couples().link_count());
            std::fflush(stdout);
        }
        if (max_seconds >= 0 &&
            std::chrono::steady_clock::now() - start > std::chrono::seconds(max_seconds)) {
            break;
        }
    }

    const auto& st = server.stats();
    std::printf("cosoftd: shutting down — %llu messages routed, %llu events broadcast, %llu locks granted\n",
                static_cast<unsigned long long>(st.messages_received),
                static_cast<unsigned long long>(st.events_broadcast),
                static_cast<unsigned long long>(st.locks_granted));
    return 0;
}
